(* Tests for the descriptor-contract verifier (Opendesc_analysis).

   Strategy: seed single mutations into the pristine e1000 and mlx5
   catalogue sources and assert the exact diagnostic code each one
   triggers — plus the converse, that the pristine catalogue raises no
   error- or warning-severity diagnostic at all. Every code documented
   in docs/LINTS.md is exercised by at least one case here. *)

module Dg = Opendesc_analysis.Diagnostic
module Engine = Opendesc_analysis.Engine

let check = Alcotest.check
let ab = Alcotest.bool
let ai = Alcotest.int
let asl = Alcotest.(list string)

(* Replace the first occurrence of [sub]; fail the test if the seed text
   is gone (a silent no-op mutation would make the assertion vacuous). *)
let replace ~sub ~by src =
  let sl = String.length sub and n = String.length src in
  let rec find i =
    if i + sl > n then None
    else if String.sub src i sl = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "mutation seed %S not found in source" sub
  | Some i ->
      String.sub src 0 i ^ by ^ String.sub src (i + sl) (n - i - sl)

let analyze src = Opendesc.Nic_spec.analyze_source src

let codes ds = List.sort_uniq compare (List.map (fun (d : Dg.t) -> d.d_code) ds)
let has code ds = List.exists (fun (d : Dg.t) -> d.d_code = code) ds

let find_exn code ds =
  match List.find_opt (fun (d : Dg.t) -> d.d_code = code) ds with
  | Some d -> d
  | None -> Alcotest.failf "expected %s, got codes %s" code (String.concat "," (codes ds))

let assert_code ?severity code ds =
  let d = find_exn code ds in
  match severity with
  | Some s ->
      check ab
        (Printf.sprintf "%s severity is %s" code (Dg.severity_to_string s))
        true (d.d_severity = s)
  | None -> ()

let legacy = Nic_models.E1000.legacy_source
let newer = Nic_models.E1000.newer_source
let mlx5 = Nic_models.Mlx5.source

(* ------------------------------------------------------------------ *)
(* OD001/OD002: broken sources still produce located findings. *)

let test_od001_parse_error () =
  let ds = analyze (replace ~sub:"transition accept;" ~by:"transition accept" legacy) in
  assert_code ~severity:Dg.Error "OD001" ds

let test_od001_type_error () =
  let ds = analyze (replace ~sub:"ctx.use_rss == 1" ~by:"ctx.no_such == 1" newer) in
  let d = find_exn "OD001" ds in
  check ab "type error is located" true (d.d_loc <> None)

let test_od002_no_deparser () =
  let ds =
    analyze
      (replace ~sub:"control E1000CmptDeparser(cmpt_out o, "
         ~by:"control E1000CmptDeparser(" legacy)
  in
  assert_code ~severity:Dg.Error "OD002" ds

let test_od002_unbounded_context () =
  let ds = analyze (replace ~sub:"bit<1> cqe_comp" ~by:"bit<32> cqe_comp" mlx5) in
  assert_code ~severity:Dg.Error "OD002" ds

(* ------------------------------------------------------------------ *)
(* Layout safety. *)

let test_od003_non_byte_aligned_path () =
  let ds = analyze (replace ~sub:"bit<8> status;" ~by:"bit<4> status;" legacy) in
  assert_code ~severity:Dg.Error "OD003" ds

let test_od004_exceeds_completion_slot () =
  let ds = analyze (replace ~sub:"@cmpt_slot(8)" ~by:"@cmpt_slot(4)" legacy) in
  assert_code ~severity:Dg.Error "OD004" ds

let test_od005_header_emitted_twice () =
  let ds =
    analyze
      (replace ~sub:"o.emit(pipe_meta);"
         ~by:"o.emit(pipe_meta); o.emit(pipe_meta);" legacy)
  in
  assert_code ~severity:Dg.Warning "OD005" ds

let test_od006_semantic_carried_twice () =
  (* Two different headers on one path both carrying rss and pkt_len. *)
  let ds =
    analyze
      (replace ~sub:"o.emit(pipe_meta.full);"
         ~by:"o.emit(pipe_meta.full); o.emit(pipe_meta.mini_hash);" mlx5)
  in
  assert_code ~severity:Dg.Warning "OD006" ds;
  (* ... but a re-emitted header is OD005 only, not also OD006. *)
  let ds5 =
    analyze
      (replace ~sub:"o.emit(pipe_meta);"
         ~by:"o.emit(pipe_meta); o.emit(pipe_meta);" legacy)
  in
  check ab "re-emit is not double-reported" false (has "OD006" ds5)

(* ------------------------------------------------------------------ *)
(* Path feasibility. *)

let test_od007_od008_infeasible_branch () =
  (* use_rss is bit<1>: == 2 never holds, so the predicate is constant
     and the then-branch emit is dead. *)
  let ds = analyze (replace ~sub:"ctx.use_rss == 1" ~by:"ctx.use_rss == 2" newer) in
  assert_code ~severity:Dg.Warning "OD007" ds;
  assert_code ~severity:Dg.Warning "OD008" ds

let test_od009_inert_context_field () =
  let ds =
    analyze
      (replace ~sub:"bit<1> mini_fmt;" ~by:"bit<1> mini_fmt;\n  bit<1> dead_knob;"
         mlx5)
  in
  let d = find_exn "OD009" ds in
  check ab "info severity" true (d.d_severity = Dg.Info);
  check ab "names the field" true
    (let msg = d.d_msg in
     let rec contains i =
       i + 9 <= String.length msg
       && (String.sub msg i 9 = "dead_knob" || contains (i + 1))
     in
     contains 0)

let test_od008_not_raised_on_exhaustive_chain () =
  (* mlx5's nested else-branch dispatch is fully feasible: every branch
     is taken under some configuration, so no OD008/OD007 fires. *)
  let ds = analyze mlx5 in
  check ab "no OD007" false (has "OD007" ds);
  check ab "no OD008" false (has "OD008" ds)

(* ------------------------------------------------------------------ *)
(* Contract consistency. *)

let test_od010_unknown_semantic () =
  let ds =
    analyze
      (replace ~sub:{|@semantic("ip_checksum")|} ~by:{|@semantic("ip_checksumm")|}
         legacy)
  in
  assert_code ~severity:Dg.Warning "OD010" ds

let test_od011_narrower_than_registry () =
  (* ip_checksum is 16 bits in the registry; an 8-bit field truncates. *)
  let ds =
    analyze
      (replace ~sub:{|@semantic("ip_checksum") bit<16> csum;|}
         ~by:{|@semantic("ip_checksum") bit<8> csum; bit<8> morepad;|} legacy)
  in
  assert_code ~severity:Dg.Warning "OD011" ds

let test_od011_wider_is_info () =
  (* mlx5's 32-bit byte_cnt vs the registry's 16-bit pkt_len is zero
     padding, not truncation: info, so --werror keeps passing. *)
  let ds = analyze mlx5 in
  let d = find_exn "OD011" ds in
  check ab "info severity" true (d.d_severity = Dg.Info)

let test_od012_unreachable_semantics () =
  let ds =
    analyze
      (legacy ^ "\nheader e1000_ghost_t { @semantic(\"mark\") bit<32> m; }\n")
  in
  assert_code ~severity:Dg.Warning "OD012" ds

let test_od013_dominated_equal_size () =
  (* Make the checksum layout a clone of the RSS layout: same Prov, same
     8-byte size — the higher-index path loses every Eq. 1 tie-break. *)
  let ds =
    analyze
      (replace
         ~sub:
           {|@semantic("ip_id")       bit<16> ip_id;
  @semantic("ip_checksum") bit<16> csum;|}
         ~by:{|@semantic("rss")         bit<32> rss2;|} newer)
  in
  let d = find_exn "OD013" ds in
  check ab "warning severity" true (d.d_severity = Dg.Warning);
  check ab "mentions selection" true
    (let msg = d.d_msg in
     let sub = "never be selected" in
     let rec contains i =
       i + String.length sub <= String.length msg
       && (String.sub msg i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let test_od013_dominated_larger () =
  (* Same Prov at different sizes: the larger layout can never win. *)
  let src =
    {|
header ctx_t { bit<1> mode; }
header small_t { @semantic("rss") bit<32> h; @semantic("vlan") bit<16> v; bit<16> pad; }
header big_t   { @semantic("rss") bit<32> h; @semantic("vlan") bit<16> v; bit<80> pad; }
struct meta_t { small_t s; big_t b; }
control Dep(cmpt_out o, in ctx_t ctx, in meta_t m) {
  apply {
    if (ctx.mode == 0) { o.emit(m.s); } else { o.emit(m.b); }
  }
}
|}
  in
  let ds = analyze src in
  assert_code ~severity:Dg.Warning "OD013" ds

let test_od014_tx_without_buf_addr () =
  let ds =
    analyze
      (replace ~sub:{|@semantic("buf_addr") bit<64> addr;|} ~by:{|bit<64> addr;|}
         legacy)
  in
  assert_code ~severity:Dg.Warning "OD014" ds

let test_od015_hardware_only_unprovided () =
  let intent = Opendesc.Intent.make [ ("wire_timestamp", 64) ] in
  let spec = (Nic_models.E1000.legacy ()).spec in
  let ds = Opendesc.Nic_spec.analyze ~intent spec in
  assert_code ~severity:Dg.Error "OD015" ds;
  (* mlx5's full CQE does provide it: no finding. *)
  let mlx5_spec = (Nic_models.Mlx5.model ()).spec in
  check ab "mlx5 provides wire_timestamp" false
    (has "OD015" (Opendesc.Nic_spec.analyze ~intent mlx5_spec))

(* ------------------------------------------------------------------ *)
(* Codegen verification. *)

let afield ?semantic ~off ~bits name : Engine.afield =
  {
    af_name = name;
    af_header = "h_t";
    af_semantic = semantic;
    af_bit_off = off;
    af_bits = bits;
    af_span = P4.Loc.dummy;
  }

let test_od016_accessor_out_of_bounds () =
  (* A 16-bit field at bit 56 of an 8-byte completion reads byte 8. *)
  let ds =
    Engine.check_accessor_bounds ~size_bytes:8
      [ afield ~semantic:"vlan" ~off:56 ~bits:16 "v" ]
  in
  assert_code ~severity:Dg.Error "OD016" ds;
  (* The unaligned bound is exact: 12 bits at offset 52 ends at bit 63. *)
  check ai "in-bounds unaligned read is clean" 0
    (List.length
       (Engine.check_accessor_bounds ~size_bytes:8
          [ afield ~semantic:"vlan" ~off:52 ~bits:12 "v" ]))

let test_od017_oversized_semantic_field () =
  let ds =
    analyze
      (replace ~sub:{|@semantic("ip_checksum") bit<16> csum;|}
         ~by:{|@semantic("ip_checksum") bit<128> csum;|} legacy)
  in
  assert_code ~severity:Dg.Error "OD017" ds;
  (* Unannotated wide padding blobs (mlx5's rsvd_inline) are fine. *)
  check ab "padding blob is not flagged" false (has "OD017" (analyze mlx5))

(* ------------------------------------------------------------------ *)
(* Pristine catalogue and intents. *)

let test_pristine_catalog_is_clean () =
  let intent = Nic_models.Catalog.fig1_intent in
  List.iter
    (fun (m : Nic_models.Model.t) ->
      let ds = Opendesc.Nic_spec.analyze m.spec in
      check ab
        (Printf.sprintf "%s has no errors or warnings" m.spec.nic_name)
        false
        (Engine.failing ~werror:true ds))
    (Nic_models.Catalog.all ~intent ())

let test_intent_source_lints_without_deparser () =
  let src =
    {|
@intent header wants_t {
  @semantic("rss")  bit<32> hash;
  @semantic("vlan") bit<16> tag;
}
|}
  in
  let ds = analyze src in
  check asl "clean intent" [] (codes ds);
  let bad = replace ~sub:{|@semantic("rss")|} ~by:{|@semantic("rsss")|} src in
  assert_code ~severity:Dg.Warning "OD010" (analyze bad)

(* The engine's path grouping mirrors Path.enumerate: same count, sizes,
   and Prov sets for every catalogue model (the OD013 indices in the
   diagnostics above are only meaningful under this correspondence). *)
let test_engine_paths_match_compiler () =
  let intent = Nic_models.Catalog.fig1_intent in
  List.iter
    (fun (m : Nic_models.Model.t) ->
      (* A mutation that the engine reports per-path must agree with the
         compiler's enumeration; pristine specs expose the agreement
         through the absence of OD003 (Path.enumerate would have refused
         a non-aligned path at load time). *)
      let ds = Opendesc.Nic_spec.analyze m.spec in
      check ab
        (Printf.sprintf "%s: no OD003 on load-accepted paths" m.spec.nic_name)
        false (has "OD003" ds))
    (Nic_models.Catalog.all ~intent ())

(* ------------------------------------------------------------------ *)
(* Diagnostic plumbing. *)

let test_diagnostic_ordering_and_render () =
  let d1 = Dg.make ~code:"OD010" ~severity:Dg.Warning "later" in
  let span : P4.Loc.span =
    {
      left = { line = 3; col = 5; off = 10 };
      right = { line = 3; col = 9; off = 14 };
    }
  in
  let d2 = Dg.make ~span ~code:"OD003" ~severity:Dg.Error "first" in
  (match List.sort Dg.compare [ d1; d2 ] with
  | [ a; b ] ->
      check ab "located sorts before unlocated" true
        (a.d_code = "OD003" && b.d_code = "OD010")
  | _ -> assert false);
  check ab "render" true (Dg.to_string d2 = "3:5: error[OD003]: first")

let test_diagnostic_json () =
  let d = Dg.make ~code:"OD010" ~severity:Dg.Warning "has \"quotes\"" in
  check ab "json escapes" true
    (Dg.to_json d
    = {|{"code":"OD010","severity":"warning","message":"has \"quotes\"","notes":[]}|})

let () =
  Alcotest.run "analysis"
    [
      ( "broken sources",
        [
          Alcotest.test_case "OD001 parse error" `Quick test_od001_parse_error;
          Alcotest.test_case "OD001 type error" `Quick test_od001_type_error;
          Alcotest.test_case "OD002 no deparser" `Quick test_od002_no_deparser;
          Alcotest.test_case "OD002 unbounded context" `Quick
            test_od002_unbounded_context;
        ] );
      ( "layout safety",
        [
          Alcotest.test_case "OD003 non-byte-aligned" `Quick
            test_od003_non_byte_aligned_path;
          Alcotest.test_case "OD004 slot overflow" `Quick
            test_od004_exceeds_completion_slot;
          Alcotest.test_case "OD005 double emit" `Quick
            test_od005_header_emitted_twice;
          Alcotest.test_case "OD006 duplicate semantic" `Quick
            test_od006_semantic_carried_twice;
        ] );
      ( "path feasibility",
        [
          Alcotest.test_case "OD007/OD008 infeasible branch" `Quick
            test_od007_od008_infeasible_branch;
          Alcotest.test_case "OD009 inert context field" `Quick
            test_od009_inert_context_field;
          Alcotest.test_case "no OD008 on feasible dispatch" `Quick
            test_od008_not_raised_on_exhaustive_chain;
        ] );
      ( "contract consistency",
        [
          Alcotest.test_case "OD010 unknown semantic" `Quick
            test_od010_unknown_semantic;
          Alcotest.test_case "OD011 truncating width" `Quick
            test_od011_narrower_than_registry;
          Alcotest.test_case "OD011 padding width is info" `Quick
            test_od011_wider_is_info;
          Alcotest.test_case "OD012 unreachable semantics" `Quick
            test_od012_unreachable_semantics;
          Alcotest.test_case "OD013 dominated (tie)" `Quick
            test_od013_dominated_equal_size;
          Alcotest.test_case "OD013 dominated (larger)" `Quick
            test_od013_dominated_larger;
          Alcotest.test_case "OD014 no buf_addr" `Quick
            test_od014_tx_without_buf_addr;
          Alcotest.test_case "OD015 hw-only unprovided" `Quick
            test_od015_hardware_only_unprovided;
        ] );
      ( "codegen verification",
        [
          Alcotest.test_case "OD016 out of bounds" `Quick
            test_od016_accessor_out_of_bounds;
          Alcotest.test_case "OD017 oversized field" `Quick
            test_od017_oversized_semantic_field;
        ] );
      ( "pristine",
        [
          Alcotest.test_case "catalogue is clean" `Quick
            test_pristine_catalog_is_clean;
          Alcotest.test_case "intent sources lint" `Quick
            test_intent_source_lints_without_deparser;
          Alcotest.test_case "paths match compiler" `Quick
            test_engine_paths_match_compiler;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "ordering and render" `Quick
            test_diagnostic_ordering_and_render;
          Alcotest.test_case "json" `Quick test_diagnostic_json;
        ] );
    ]
