type vertex = {
  v_id : int;
  v_emit : string;
  v_header : P4.Typecheck.header_def;
  v_sem : string list;
  v_size : int;
}

type edge = { e_src : int; e_dst : int; e_label : string }

type t = {
  vertices : vertex list;
  edges : edge list;
  leaves : int list;
  ends : (int * string) list;
      (* final frontier: vertex id (or root) with the predicate label
         pending when the body finished there *)
}

let root = -1

exception Analysis_error of string

let semantics_of_header (h : P4.Typecheck.header_def) =
  List.filter_map (fun (f : P4.Typecheck.field) -> f.f_semantic) h.h_fields

(* Find the completion-stream parameter: the first cmpt_out-typed one. *)
let out_param (c : P4.Typecheck.control_def) =
  let is_out (p : P4.Typecheck.cparam) =
    match p.c_typ with P4.Typecheck.RExtern "cmpt_out" -> true | _ -> false
  in
  match List.find_opt is_out c.ct_params with
  | Some p -> p.c_name
  | None ->
      raise
        (Analysis_error
           (Printf.sprintf "control %s has no cmpt_out parameter" c.ct_name))

let emit_target out_name (e : P4.Ast.expr) =
  match e with
  | P4.Ast.ECall (P4.Ast.EMember (base, meth), _, [ arg ]) when meth.name = "emit" -> (
      match P4.Eval.path_of_expr base with
      | Some [ b ] when b = out_name -> Some arg
      | _ -> None)
  | _ -> None

type builder = {
  mutable vertices : vertex list;
  mutable edges : edge list;
  mutable next_id : int;
  tenv : P4.Typecheck.t;
  scope : P4.Typecheck.scope;
  out_name : string;
}

(* The frontier is the set of (vertex id, pending edge label) pairs that
   the next emitted vertex must be linked from. Labels accumulate across
   nested conditionals until an emit consumes them. *)
let rec walk_block b frontier (stmts : P4.Ast.block) =
  List.fold_left (walk_stmt b) frontier stmts

and walk_stmt b frontier (s : P4.Ast.stmt) =
  match s with
  | P4.Ast.SCall e -> (
      match emit_target b.out_name e with
      | None -> frontier
      | Some arg -> (
          match P4.Typecheck.type_of_expr b.tenv b.scope arg with
          | P4.Typecheck.RHeader h ->
              let v =
                {
                  v_id = b.next_id;
                  v_emit = P4.Pretty.expr_to_string arg;
                  v_header = h;
                  v_sem = semantics_of_header h;
                  v_size = P4.Typecheck.header_bytes h;
                }
              in
              b.next_id <- b.next_id + 1;
              b.vertices <- v :: b.vertices;
              List.iter
                (fun (src, label) ->
                  b.edges <- { e_src = src; e_dst = v.v_id; e_label = label } :: b.edges)
                frontier;
              [ (v.v_id, "") ]
          | ty ->
              raise
                (Analysis_error
                   (Printf.sprintf "emit of non-header expression %s : %s"
                      (P4.Pretty.expr_to_string arg)
                      (P4.Typecheck.rtyp_name ty)))))
  | P4.Ast.SIf (cond, then_b, else_b) ->
      let cond_s = P4.Pretty.expr_to_string cond in
      let with_label lbl (src, pending) =
        (src, if pending = "" then lbl else pending ^ " && " ^ lbl)
      in
      let then_frontier =
        walk_block b (List.map (with_label cond_s) frontier) then_b
      in
      let neg = "!" ^ cond_s in
      let else_frontier =
        match else_b with
        | Some eb -> walk_block b (List.map (with_label neg) frontier) eb
        | None -> List.map (with_label neg) frontier
      in
      then_frontier @ else_frontier
  | P4.Ast.SBlock blk -> walk_block b frontier blk
  | P4.Ast.SAssign _ | P4.Ast.SVar _ | P4.Ast.SConst _ | P4.Ast.SEmpty
  | P4.Ast.SReturn _ ->
      frontier

let build tenv (c : P4.Typecheck.control_def) =
  let out_name = out_param c in
  let b =
    {
      vertices = [];
      edges = [];
      next_id = 0;
      tenv;
      scope = P4.Typecheck.scope_of_control tenv c;
      out_name;
    }
  in
  let final_frontier = walk_block b [ (root, "") ] c.ct_body in
  let vertices = List.rev b.vertices in
  let edges = List.rev b.edges in
  let leaves =
    List.sort_uniq compare (List.map (fun (src, _) -> src) final_frontier)
  in
  { vertices; edges; leaves; ends = final_frontier }

let vertex (t : t) id = List.find (fun v -> v.v_id = id) t.vertices

let walks (t : t) =
  (* DFS from root along edges; a walk terminates wherever the body could
     finish (an entry of [ends]), carrying that entry's pending label. *)
  let succs id = List.filter (fun e -> e.e_src = id) t.edges in
  let rec go id labels visited =
    let here =
      List.filter_map
        (fun (eid, pending) ->
          if eid = id then
            let labels = if pending = "" then labels else pending :: labels in
            Some (List.rev labels, List.rev visited)
          else None)
        t.ends
    in
    here
    @ List.concat_map
        (fun e ->
          let lbls = if e.e_label = "" then labels else e.e_label :: labels in
          go e.e_dst lbls (vertex t e.e_dst :: visited))
        (succs id)
  in
  go root [] []

let to_dot (t : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph cmpt_deparser {\n  rankdir=TB;\n";
  Buffer.add_string buf "  root [shape=point];\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d [shape=box, label=\"emit(%s)\\n%s, %dB\"];\n" v.v_id
           v.v_emit
           (String.concat "," v.v_sem)
           v.v_size))
    t.vertices;
  List.iter
    (fun e ->
      let src = if e.e_src = root then "root" else Printf.sprintf "v%d" e.e_src in
      let label = if e.e_label = "" then "" else Printf.sprintf " [label=\"%s\"]" e.e_label in
      Buffer.add_string buf (Printf.sprintf "  %s -> v%d%s;\n" src e.e_dst label))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf (t : t) =
  Format.fprintf ppf "cfg: %d vertices, %d edges, leaves [%s]" (List.length t.vertices)
    (List.length t.edges)
    (String.concat ";" (List.map string_of_int t.leaves))
