type t = {
  name : string;
  pkts : int;
  cycles_per_pkt : float;
  pps_m : float;
  latency_ns : float;
  dma_bytes_per_pkt : float;
  drops : int;
  breakdown : (string * float) list;
  bursts : int;
  burst_hist : (int * int) list;
  faults_injected : int;
  faults_detected : int;
  descs_quarantined : int;
  retries : int;
  spins : int;
  parks : int;
  wakes : int;
}

let make ~name ~pkts ~ledger ~dma_bytes ~drops =
  let bursts = 0 and burst_hist = [] in
  let cycles_per_pkt = if pkts = 0 then 0.0 else Cost.total ledger /. float_of_int pkts in
  {
    name;
    pkts;
    cycles_per_pkt;
    pps_m = (if cycles_per_pkt = 0.0 then 0.0 else Cost.pps_of_cycles cycles_per_pkt /. 1e6);
    latency_ns = Cost.latency_ns_of_cycles cycles_per_pkt;
    dma_bytes_per_pkt = (if pkts = 0 then 0.0 else float_of_int dma_bytes /. float_of_int pkts);
    drops;
    breakdown =
      List.map
        (fun (k, c) -> (k, if pkts = 0 then 0.0 else c /. float_of_int pkts))
        (Cost.breakdown ledger);
    bursts;
    burst_hist = List.sort compare burst_hist;
    faults_injected = 0;
    faults_detected = 0;
    descs_quarantined = 0;
    retries = 0;
    spins = 0;
    parks = 0;
    wakes = 0;
  }

let with_bursts ~bursts ~burst_hist t =
  { t with bursts; burst_hist = List.sort compare burst_hist }

let with_faults ~injected ~detected ~quarantined ~retries t =
  {
    t with
    faults_injected = injected;
    faults_detected = detected;
    descs_quarantined = quarantined;
    retries;
  }

let with_idle ~spins ~parks ~wakes t = { t with spins; parks; wakes }

(* Aggregate per-domain shards into one view. Per-packet averages are
   re-derived from packet-weighted totals, so merging is exact: the
   merged cycles/pkt equals what one ledger over all shards would have
   reported. *)
let merge ~name shards =
  let pkts = List.fold_left (fun a s -> a + s.pkts) 0 shards in
  let fp = float_of_int pkts in
  let weighted f =
    List.fold_left (fun a s -> a +. (f s *. float_of_int s.pkts)) 0.0 shards
  in
  let cycles = weighted (fun s -> s.cycles_per_pkt) in
  let cycles_per_pkt = if pkts = 0 then 0.0 else cycles /. fp in
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k
            ((v *. float_of_int s.pkts)
            +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
        s.breakdown)
    shards;
  let breakdown =
    Hashtbl.fold
      (fun k v acc -> (k, if pkts = 0 then 0.0 else v /. fp) :: acc)
      tbl []
    |> List.sort (fun (k1, a) (k2, b) ->
           match compare b a with 0 -> String.compare k1 k2 | c -> c)
  in
  let htbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun (size, n) ->
          Hashtbl.replace htbl size
            (n + Option.value ~default:0 (Hashtbl.find_opt htbl size)))
        s.burst_hist)
    shards;
  {
    name;
    pkts;
    cycles_per_pkt;
    pps_m =
      (if cycles_per_pkt = 0.0 then 0.0
       else Cost.pps_of_cycles cycles_per_pkt /. 1e6);
    latency_ns = Cost.latency_ns_of_cycles cycles_per_pkt;
    dma_bytes_per_pkt =
      (if pkts = 0 then 0.0 else weighted (fun s -> s.dma_bytes_per_pkt) /. fp);
    drops = List.fold_left (fun a s -> a + s.drops) 0 shards;
    breakdown;
    bursts = List.fold_left (fun a s -> a + s.bursts) 0 shards;
    burst_hist =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) htbl [] |> List.sort compare;
    faults_injected = List.fold_left (fun a s -> a + s.faults_injected) 0 shards;
    faults_detected = List.fold_left (fun a s -> a + s.faults_detected) 0 shards;
    descs_quarantined =
      List.fold_left (fun a s -> a + s.descs_quarantined) 0 shards;
    retries = List.fold_left (fun a s -> a + s.retries) 0 shards;
    spins = List.fold_left (fun a s -> a + s.spins) 0 shards;
    parks = List.fold_left (fun a s -> a + s.parks) 0 shards;
    wakes = List.fold_left (fun a s -> a + s.wakes) 0 shards;
  }

let avg_burst t =
  if t.bursts = 0 then 0.0 else float_of_int t.pkts /. float_of_int t.bursts

let pp_row ppf t =
  Format.fprintf ppf "%-26s %8d %10.1f %8.2f %9.1f %10.1f %6d" t.name t.pkts
    t.cycles_per_pkt t.pps_m t.latency_ns t.dma_bytes_per_pkt t.drops

let pp_table ppf rows =
  Format.fprintf ppf "@[<v>%-26s %8s %10s %8s %9s %10s %6s@," "stack" "pkts"
    "cycles/pkt" "Mpps" "lat(ns)" "dmaB/pkt" "drops";
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_row r) rows;
  Format.fprintf ppf "@]"

let pp_burst_hist ppf t =
  if t.bursts = 0 then Format.fprintf ppf "(unbatched)"
  else begin
    Format.fprintf ppf "@[<h>%d bursts, avg %.1f pkt/burst:" t.bursts (avg_burst t);
    List.iter (fun (size, n) -> Format.fprintf ppf " %dx%d" n size) t.burst_hist;
    Format.fprintf ppf "@]"
  end

let pp_idle ppf t =
  Format.fprintf ppf "@[<h>idle: %d spins, %d parks, %d wakes@]" t.spins t.parks
    t.wakes

let ratio a b = b.cycles_per_pkt /. a.cycles_per_pkt
