(** BlueField-style partially-programmable model.

    A base CQE (hash, checksum status, VLAN, length, wire timestamp) plus
    one programmable metadata slot filled by the match-action pipeline
    currently installed on the NIC — per the paper, "a field for specific
    metadata computed through a series of Match-Action tables, recently
    programmable in P4". Installing a different pipeline regenerates the
    interface description: {!source_with_slot} is that regeneration.

    The default instance installs a key-value-store pipeline
    (slot = [kvs_key]), matching the Figure-1 scenario. *)

val source_with_slot : semantic:string -> width:int -> string
(** Description with the programmable slot bound to one semantic. *)

val source : string
(** [source_with_slot ~semantic:"kvs_key" ~width:64]. *)

val model : ?slot:string * int -> unit -> Model.t
(** [model ~slot:(semantic, width) ()]; default slot ["kvs_key", 64]. *)
