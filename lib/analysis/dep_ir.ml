(* A small IR of a completion deparser body: emit and branch sites are
   numbered in AST pre-order (then-branch before else-branch), the same
   encounter order the compiler's CFG uses, so diagnostics and path
   indices line up with `opendesc_cc paths`/`cfg` output.

   Unlike Path.enumerate — which refuses undecidable branches — the
   interpreter here forks on them, so the analysis still produces runs
   (marked inexact) for descriptions the compiler would reject. *)

type emit = {
  e_id : int;  (** site number, pre-order *)
  e_arg : string;  (** pretty-printed emitted expression *)
  e_header : P4.Typecheck.header_def;
  e_span : P4.Loc.span;
}

type node =
  | NEmit of emit
  | NIf of { i_id : int; i_cond : P4.Ast.expr; i_then : node list; i_else : node list }
  | NAssign of P4.Ast.expr * P4.Ast.expr
  | NDecl of string * P4.Ast.expr option
  | NReturn
  | NOther

type t = {
  ir_nodes : node list;
  ir_emits : emit list;  (** all emit sites, in site order *)
  ir_ifs : (int * P4.Ast.expr) list;  (** all branch sites, in site order *)
  ir_out : string;  (** the cmpt_out parameter name *)
}

let out_param (c : P4.Typecheck.control_def) =
  List.find_map
    (fun (p : P4.Typecheck.cparam) ->
      match p.c_typ with
      | P4.Typecheck.RExtern "cmpt_out" -> Some p.c_name
      | _ -> None)
    c.ct_params

let emit_target out_name (e : P4.Ast.expr) =
  match e with
  | P4.Ast.ECall (P4.Ast.EMember (base, meth), _, [ arg ]) when meth.name = "emit"
    -> (
      match P4.Eval.path_of_expr base with
      | Some [ b ] when b = out_name -> Some arg
      | _ -> None)
  | _ -> None

exception Build_error of string

let of_control tenv (ctrl : P4.Typecheck.control_def) : (t, string) result =
  match out_param ctrl with
  | None ->
      Error
        (Printf.sprintf "control %s has no cmpt_out parameter" ctrl.ct_name)
  | Some out -> (
      let scope = P4.Typecheck.scope_of_control tenv ctrl in
      let next = ref 0 in
      let fresh () =
        let id = !next in
        next := id + 1;
        id
      in
      let emits = ref [] and ifs = ref [] in
      let rec build_block stmts = List.concat_map build_stmt stmts
      and build_stmt (s : P4.Ast.stmt) =
        match s with
        | P4.Ast.SCall e -> (
            match emit_target out e with
            | None -> [ NOther ]
            | Some arg -> (
                let id = fresh () in
                match P4.Typecheck.type_of_expr tenv scope arg with
                | P4.Typecheck.RHeader h ->
                    let em =
                      {
                        e_id = id;
                        e_arg = P4.Pretty.expr_to_string arg;
                        e_header = h;
                        e_span = P4.Ast.expr_span arg;
                      }
                    in
                    emits := em :: !emits;
                    [ NEmit em ]
                | ty ->
                    raise
                      (Build_error
                         (Printf.sprintf "emit of non-header %s : %s"
                            (P4.Pretty.expr_to_string arg)
                            (P4.Typecheck.rtyp_name ty)))))
        | P4.Ast.SIf (c, th, el) ->
            let id = fresh () in
            ifs := (id, c) :: !ifs;
            let i_then = build_block th in
            let i_else = match el with Some b -> build_block b | None -> [] in
            [ NIf { i_id = id; i_cond = c; i_then; i_else } ]
        | P4.Ast.SBlock b -> build_block b
        | P4.Ast.SAssign (l, r) -> [ NAssign (l, r) ]
        | P4.Ast.SVar (_, name, init) -> [ NDecl (name.name, init) ]
        | P4.Ast.SConst (_, name, v) -> [ NDecl (name.name, Some v) ]
        | P4.Ast.SReturn _ -> [ NReturn ]
        | P4.Ast.SEmpty -> []
      in
      match build_block ctrl.ct_body with
      | nodes ->
          Ok
            {
              ir_nodes = nodes;
              ir_emits = List.rev !emits;
              ir_ifs = List.rev !ifs;
              ir_out = out;
            }
      | exception Build_error msg -> Error msg
      | exception P4.Typecheck.Type_error (msg, _) -> Error msg)

(* ------------------------------------------------------------------ *)
(* Abstract/concrete interpretation under one context assignment. *)

type exec_emit = {
  x_emit : emit;
  x_bit_off : int;  (** absolute offset of this header in the completion *)
  x_decided : bool;  (** false when reached under a forked (undecidable) branch *)
}

type run = {
  r_emits : exec_emit list;
  r_total_bits : int;
  r_exact : bool;  (** no undecidable branch was forked along this run *)
}

type state = {
  locals : (string list * P4.Eval.value) list;
  bits : int;
  emits : exec_emit list;  (* reversed *)
  exact : bool;
  stopped : bool;
}

let max_forks = 64

let run ~consts ~ctx_env t : run list =
  let env_of st path =
    match List.assoc_opt path st.locals with
    | Some v -> Some v
    | None -> ( match ctx_env path with Some v -> Some v | None -> consts path)
  in
  let set_local st path v =
    { st with locals = (path, v) :: List.remove_assoc path st.locals }
  in
  let rec exec_nodes sts nodes = List.fold_left exec_node sts nodes
  and exec_node sts node =
    let allow_fork = List.length sts < max_forks in
    List.concat_map (fun st -> exec_one allow_fork st node) sts
  and exec_one allow_fork st node =
    if st.stopped then [ st ]
    else
      match node with
      | NEmit em ->
          [
            {
              st with
              bits = st.bits + em.e_header.h_bits;
              emits =
                { x_emit = em; x_bit_off = st.bits; x_decided = st.exact }
                :: st.emits;
            };
          ]
      | NIf { i_cond; i_then; i_else; _ } -> (
          match P4.Eval.eval_bool (env_of st) i_cond with
          | Some true -> exec_nodes [ st ] i_then
          | Some false -> exec_nodes [ st ] i_else
          | None ->
              let st = { st with exact = false } in
              if allow_fork then
                exec_nodes [ st ] i_then @ exec_nodes [ st ] i_else
              else exec_nodes [ st ] i_then)
      | NAssign (l, r) -> (
          match P4.Eval.path_of_expr l with
          | Some p -> [ set_local st p (P4.Eval.eval (env_of st) r) ]
          | None -> [ st ])
      | NDecl (n, init) ->
          let v =
            match init with
            | Some e -> P4.Eval.eval (env_of st) e
            | None -> P4.Eval.VUnknown
          in
          [ set_local st [ n ] v ]
      | NReturn -> [ { st with stopped = true } ]
      | NOther -> [ st ]
  in
  let init =
    { locals = []; bits = 0; emits = []; exact = true; stopped = false }
  in
  exec_nodes [ init ] t.ir_nodes
  |> List.map (fun st ->
         { r_emits = List.rev st.emits; r_total_bits = st.bits; r_exact = st.exact })
