(** Negative fuzzing: near-miss mutations with an expected-lint oracle.

    The positive campaign ({!Campaign}) proves the toolchain accepts
    everything the generator's grammar produces; this module proves the
    analyzer still {e rejects} when a generated spec is pushed just past
    a contract boundary. Each round draws a spec, applies one small
    mutation that a careless vendor edit could make, and asserts the
    specific OD code the mutation violates actually fires — and that it
    did {e not} fire on the unmutated baseline, so the test really
    exercises the boundary rather than a pre-existing finding. *)

type mutation =
  | Duplicate_emit  (** emit the same header twice on one path → OD005 *)
  | Oversized_slot
      (** declare a [@cmpt_slot] one byte smaller than the smallest
          path, so every feasible path overflows it → OD004 *)
  | Unknown_semantic  (** annotate a field with an unregistered name → OD010 *)
  | Wide_semantic
      (** widen a [@semantic] field past the 64-bit accessor limit →
          OD017 *)
  | Over_budget
      (** keep the spec verbatim but declare a budget of half its own
          proved worst-case decode bound → OD025
          ({!Opendesc_analysis.Costbound}) *)

val mutations : mutation list
val mutation_name : mutation -> string

val expected_code : mutation -> string
(** The OD code the mutated spec must produce. *)

val mutate : mutation -> Spec.t -> Spec.t option
(** Structurally apply the mutation; [None] when the spec has no site
    for it (e.g. no leaf emits anything). *)

type case = {
  ng_index : int;
  ng_seed : int64;  (** derived spec seed ({!Gen.spec_seed}) *)
  ng_name : string;
  ng_mutation : mutation;
  ng_expected : string;
  ng_fired : string list;  (** distinct codes on the mutated spec *)
  ng_ok : bool;  (** expected code among [ng_fired] *)
}

type t = {
  ng_campaign_seed : int64;
  ng_count : int;  (** rounds requested *)
  ng_cases : case list;  (** one per round with an applicable mutation *)
  ng_skipped : int;  (** rounds where no mutation had a site *)
}

val failed : t -> case list

val run : ?bounds:Gen.bounds -> seed:int64 -> count:int -> unit -> t
(** Deterministic in (seed, count, bounds): round [i] mutates the same
    spec the positive campaign would draw at index [i], rotating through
    {!mutations} and falling forward to the next applicable one. *)

val to_json : t -> string
(** Schema [opendesc-fuzz-negative-1]; every field deterministic. *)

val summary : t -> string
