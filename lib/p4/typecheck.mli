(** Name resolution, header layout computation, and light type checking.

    The checker resolves every type down to widths (evaluating width
    expressions against global constants), computes bit-level layouts for
    headers, records @semantic annotations per field, and walks parser and
    control bodies to verify that member accesses, assignments, calls, and
    conditions are well-formed. It is deliberately not a full P4₁₆ front
    end — it covers what descriptor-interface descriptions need, which is
    the corpus the OpenDesc compiler consumes. *)

exception Type_error of string * Loc.span

(** A header field with its computed layout. *)
type field = {
  f_name : string;
  f_bits : int;  (** width *)
  f_bit_off : int;  (** offset of the MSB from the start of the header *)
  f_semantic : string option;  (** @semantic("...") tag *)
  f_annots : Ast.annotation list;
  f_span : Loc.span;  (** declaration site (field name) *)
}

type header_def = {
  h_name : string;
  h_fields : field list;
  h_bits : int;  (** total width; emitted headers must be a byte multiple *)
  h_annots : Ast.annotation list;
  h_span : Loc.span;  (** declaration site (header name) *)
}

type rtyp =
  | RBit of int
  | RSigned of int
  | RVarbit of int
  | RBool
  | RError
  | RString
  | RVoid
  | RHeader of header_def
  | RStruct of struct_def
  | REnum of string
  | RSerEnum of { se_name : string; se_width : int }
  | RExtern of string
  | RTypeVar of string

and struct_def = { s_name : string; s_fields : (string * rtyp) list }

val rtyp_name : rtyp -> string
(** Short printable name ("bit<32>", header name, ...). *)

val header_bytes : header_def -> int
(** Size in bytes. @raise Type_error if [h_bits] is not a byte multiple. *)

val find_field : header_def -> string -> field option

type cparam = {
  c_name : string;
  c_dir : Ast.direction;
  c_typ : rtyp;
  c_annots : Ast.annotation list;
}

type control_def = {
  ct_name : string;
  ct_params : cparam list;
  ct_locals : Ast.decl list;
  ct_body : Ast.block;
  ct_annots : Ast.annotation list;
  ct_span : Loc.span;  (** declaration site (control name) *)
}

type parser_def = {
  pr_name : string;
  pr_params : cparam list;
  pr_locals : Ast.decl list;
  pr_states : Ast.parser_state list;
  pr_annots : Ast.annotation list;
  pr_span : Loc.span;  (** declaration site (parser name) *)
}

type t
(** Checked program environment. *)

val check : Ast.program -> t
(** @raise Type_error on the first error. *)

val check_string : string -> t
(** Parse then check. @raise Parser.Error / Lexer.Error / Type_error. *)

val check_result : Ast.program -> (t, string) result

val program : t -> Ast.program

val resolve : t -> Ast.typ -> rtyp
(** @raise Type_error on unknown type names. *)

val find_header : t -> string -> header_def option

val headers : t -> header_def list
(** In declaration order. *)

val find_control : t -> string -> control_def option

val controls : t -> control_def list

val find_parser : t -> string -> parser_def option

val parsers : t -> parser_def list

val const_env : t -> Eval.env
(** Global constants plus serializable-enum members (path
    [[enum; member]]). *)

(** {1 Expression typing inside a body} *)

type scope

val scope_of_params : t -> cparam list -> scope

val scope_add : scope -> string -> rtyp -> scope

val scope_of_control : t -> control_def -> scope
(** Parameters plus control-local variable/constant declarations. *)

val type_of_expr : t -> scope -> Ast.expr -> rtyp
(** @raise Type_error for unknown names/fields or ill-formed accesses.
    Calls are typed by their callee's return type; [isValid()] is bool. *)
