(* The engine never depends on the opendesc library; callers hand it a
   functional view of whatever semantic registry they use. *)

type t = {
  known : string -> bool;
  width : string -> int option;  (** registry width in bits *)
  sw_cost : string -> float;  (** Eq. 1 software-fallback cost *)
  hardware_only : string -> bool;  (** no software fallback exists *)
}

let empty =
  {
    known = (fun _ -> false);
    width = (fun _ -> None);
    sw_cost = (fun _ -> infinity);
    hardware_only = (fun _ -> false);
  }
