(** Lexical tokens of the P4 subset. *)

type kind =
  (* literals and names *)
  | Ident of string
  | Int of { value : int64; width : int option; signed : bool }
  | String of string
  (* keywords *)
  | KwHeader
  | KwStruct
  | KwTypedef
  | KwConst
  | KwParser
  | KwControl
  | KwState
  | KwTransition
  | KwSelect
  | KwApply
  | KwIf
  | KwElse
  | KwReturn
  | KwEnum
  | KwError
  | KwMatchKind
  | KwExtern
  | KwPackage
  | KwAction
  | KwTable
  | KwKey
  | KwActions
  | KwDefaultAction
  | KwEntries
  | KwIn
  | KwOut
  | KwInout
  | KwBit
  | KwInt
  | KwVarbit
  | KwBool
  | KwVoid
  | KwTrue
  | KwFalse
  | KwDefault
  | KwSwitch
  (* punctuation *)
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | LAngle (* < *)
  | RAngle (* > *)
  | Semi
  | Colon
  | Comma
  | Dot
  | At
  | Question
  (* operators *)
  | Assign (* = *)
  | Eq (* == *)
  | Neq (* != *)
  | Le (* <= *)
  | Ge (* >= *)
  | Not (* ! *)
  | AndAnd
  | OrOr
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl (* << ; >> is recognised in the parser from adjacent RAngle *)
  | MaskAnd (* &&& keyset mask *)
  | PlusPlus (* ++ concatenation *)
  | Eof
[@@deriving show { with_path = false }, eq]

type t = { kind : kind; span : Loc.span }

let keyword_table =
  [
    ("header", KwHeader);
    ("struct", KwStruct);
    ("typedef", KwTypedef);
    ("const", KwConst);
    ("parser", KwParser);
    ("control", KwControl);
    ("state", KwState);
    ("transition", KwTransition);
    ("select", KwSelect);
    ("apply", KwApply);
    ("if", KwIf);
    ("else", KwElse);
    ("return", KwReturn);
    ("enum", KwEnum);
    ("error", KwError);
    ("match_kind", KwMatchKind);
    ("extern", KwExtern);
    ("package", KwPackage);
    ("action", KwAction);
    ("table", KwTable);
    ("key", KwKey);
    ("actions", KwActions);
    ("default_action", KwDefaultAction);
    ("entries", KwEntries);
    ("in", KwIn);
    ("out", KwOut);
    ("inout", KwInout);
    ("bit", KwBit);
    ("int", KwInt);
    ("varbit", KwVarbit);
    ("bool", KwBool);
    ("void", KwVoid);
    ("true", KwTrue);
    ("false", KwFalse);
    ("default", KwDefault);
    ("switch", KwSwitch);
  ]

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int { value; _ } -> Printf.sprintf "integer %Ld" value
  | String s -> Printf.sprintf "string %S" s
  | Eof -> "end of input"
  | k -> (
      match List.find_opt (fun (_, k') -> k' = k) keyword_table with
      | Some (name, _) -> Printf.sprintf "keyword %S" name
      | None -> show_kind k)
