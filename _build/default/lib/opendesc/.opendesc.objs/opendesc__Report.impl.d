lib/opendesc/report.ml: Compile Context Descparser Float Format Intent List Nic_spec Path Printf Select String
