let source_with_slot ~semantic ~width =
  Printf.sprintf
    {|
/* BlueField-style partially-programmable NIC: base CQE plus one
   programmable slot currently bound to %s by the installed
   match-action pipeline. The compressed format drops everything but
   hash and length. */
header bf_ctx_t {
  bit<1> compressed;
  bit<1> slot_en;      /* programmable slot present in the completion */
}

header bf_tx_desc_t {
  bit<32> ctrl;
  @semantic("buf_addr") bit<64> addr;
  bit<32> byte_count;
}

header bf_base_cmpt_t {
  @semantic("rss")            bit<32> rx_hash;
  @semantic("csum_ok")        bit<8>  csum_ok;
  @semantic("l4_type")        bit<4>  l4_type;
  @semantic("l3_type")        bit<4>  l3_type;
  @semantic("vlan")           bit<16> vlan_info;
  @semantic("pkt_len")        bit<32> byte_cnt;
  @semantic("wire_timestamp") bit<64> timestamp;
  bit<8> op_own;
  bit<24> rsvd;
}

header bf_slot_cmpt_t {
  @semantic("%s") bit<%d> slot_value;
}

header bf_mini_cmpt_t {
  @semantic("rss")     bit<32> rx_hash;
  @semantic("pkt_len") bit<32> byte_cnt;
}

struct bf_meta_t {
  bf_base_cmpt_t base;
  bf_slot_cmpt_t slot;
  bf_mini_cmpt_t mini;
}

parser BfDescParser(desc_in d, in bf_ctx_t h2c_ctx, out bf_tx_desc_t desc_hdr) {
  state start {
    d.extract(desc_hdr);
    transition accept;
  }
}

@cmpt_deparser
control BfCmptDeparser(cmpt_out o, in bf_ctx_t ctx,
                       in bf_tx_desc_t desc_hdr, in bf_meta_t pipe_meta) {
  apply {
    if (ctx.compressed == 1) {
      o.emit(pipe_meta.mini);
    } else {
      o.emit(pipe_meta.base);
      if (ctx.slot_en == 1) {
        o.emit(pipe_meta.slot);
      }
    }
  }
}
|}
    semantic semantic width

let source = source_with_slot ~semantic:"kvs_key" ~width:64

let model ?(slot = ("kvs_key", 64)) () =
  let semantic, width = slot in
  Model.make
    (Opendesc.Nic_spec.load_exn
       ~name:(Printf.sprintf "bluefield-%s" semantic)
       ~kind:Opendesc.Nic_spec.Partially_programmable
       ~notes:
         (Printf.sprintf "base CQE + programmable MA-pipeline slot (%s)" semantic)
       (source_with_slot ~semantic ~width))
