lib/opendesc/accessor.mli: Path
