test/opendesc/test_opendesc.mli:
