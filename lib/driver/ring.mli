(** Fixed-slot descriptor rings over DMA memory.

    The classic NIC coordination structure: a power-of-two array of
    equal-size slots with a producer and a consumer index. Completion
    rings have the device as producer; TX rings have the host as
    producer. Indices use the standard free-running scheme (wrap at
    2^62) so full/empty are unambiguous. *)

type t

val create : slots:int -> slot_size:int -> t
(** [slots] must be a power of two. *)

val slots : t -> int

val slot_size : t -> int

val dma : t -> Dma.t
(** The backing region, for footprint accounting. *)

val is_empty : t -> bool

val is_full : t -> bool

val available : t -> int
(** Entries ready for the consumer. *)

val space : t -> int
(** Free slots for the producer. *)

val prod_index : t -> int
(** Free-running producer index: the slot [produce_*] will fill next is
    [slot_offset t (prod_index t)]; the one it just filled is
    [slot_offset t (prod_index t - 1)]. Exposed for the fault-injection
    layer, which mutates freshly-produced slots in place. *)

val cons_index : t -> int
(** Free-running consumer index. *)

val slot_offset : t -> int -> int
(** Byte offset of a free-running index's slot in [dma t]'s memory. *)

val produce_dev : ?len:int -> t -> bytes -> bool
(** Device writes the next slot (counted as DMA). False when full.
    [?len] bounds the copy to a prefix of [payload], so a pooled caller
    can reuse one full-slot scratch buffer for variable-length payloads
    without re-slicing; defaults to the whole payload (clamped to the
    slot size either way). *)

val produce_host : t -> bytes -> bool
(** Host writes the next slot (not counted). False when full. *)

val consume_host : t -> bytes option
(** Host reads the next slot (not counted; completions already crossed
    the bus when the device produced them). Allocates a fresh buffer per
    slot — a thin wrapper over {!consume_host_into} kept for tests and
    one-shot tooling; hot paths use the [_into] variant with a reusable
    scratch buffer. *)

val consume_host_into : t -> bytes -> bool
(** Like {!consume_host}, but blits the slot into the caller's reusable
    buffer instead of allocating. The batched datapath's harvest
    primitive.
    @raise Invalid_argument when the buffer is shorter than [slot_size]
    (a short scratch buffer would otherwise read as a silently truncated
    descriptor — indistinguishable from a torn DMA write). *)

val produce_host_batch : t -> bytes list -> int
(** Host writes consecutive slots; stops at the first full slot. Returns
    the number written. *)

val consume_dev : t -> bytes option
(** Device reads the next slot (counted as DMA — TX descriptor fetch).
    Allocating wrapper over {!consume_dev_into}; see {!consume_host}. *)

val consume_dev_into : t -> bytes -> bool
(** Like {!consume_dev}, but blits the slot into the caller's reusable
    buffer instead of allocating.
    @raise Invalid_argument when the buffer is shorter than [slot_size]
    (see {!consume_host_into}). *)

val reset : t -> unit
