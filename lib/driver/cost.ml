type t = (string, float) Hashtbl.t

let create () : t = Hashtbl.create 16

let charge t name cycles =
  let cur = match Hashtbl.find_opt t name with Some c -> c | None -> 0.0 in
  Hashtbl.replace t name (cur +. cycles)

let total t = Hashtbl.fold (fun _ c acc -> acc +. c) t 0.0

let breakdown t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset = Hashtbl.reset

(* The accounting sink: cost-model bookkeeping as an optional observer.
   The hot datapath matches on the sink once per burst and skips every
   charge (including the float computations feeding them) under [Null];
   the bench and the model-throughput experiments pass [Ledger] and get
   exactly the charges the inline path used to make. *)
type sink = Null | Ledger of t

let null = Null
let ledger t = Ledger t
let enabled = function Null -> false | Ledger _ -> true

let charge_sink sink name cycles =
  match sink with Null -> () | Ledger t -> charge t name cycles

module K = struct
  let cache_line_load = 18.0
  let field_move = 3.0
  let field_branch = 2.0
  let accessor_read = 2.5
  let skbuff_alloc = 110.0
  let mbuf_alloc = 24.0
  let mbuf_dyn_lookup = 14.0
  let xdp_prologue = 12.0
  let ring_advance = 6.0
  let refill = 8.0
  let doorbell = 40.0
  let payload_touch_per_byte = 0.55
  let stream_copy_per_byte = 0.22
  let pipeline_fixed = 140.0
  let clock_ghz = 3.0
end

let pps_of_cycles cycles = K.clock_ghz *. 1e9 /. cycles

let latency_ns_of_cycles cycles = (K.pipeline_fixed +. cycles) /. K.clock_ghz
