examples/xdp_metadata.mli:
