lib/packet/cksum.mli: Pkt
