type field = { if_name : string; if_semantic : string; if_width : int }

type t = { name : string; fields : field list; budget : float option }

let required t = List.map (fun f -> f.if_semantic) t.fields

let make ?(name = "intent_t") ?budget semantics =
  {
    name;
    fields =
      List.map (fun (s, w) -> { if_name = s; if_semantic = s; if_width = w }) semantics;
    budget;
  }

(* [@budget(<cycles>)] on the header: the decode-cost envelope the
   application is willing to pay per packet (OD025 gates against it).
   Same argument shapes as [@cost] on a field. *)
let budget_of_header (h : P4.Typecheck.header_def) =
  match P4.Ast.find_annotation "budget" h.h_annots with
  | None -> None
  | Some a -> (
      match a.args with
      | [ P4.Ast.AInt c ] -> Some (Int64.to_float c)
      | [ P4.Ast.AString s ] -> float_of_string_opt s
      | _ -> None)

let of_header (h : P4.Typecheck.header_def) =
  {
    name = h.h_name;
    fields =
      List.filter_map
        (fun (f : P4.Typecheck.field) ->
          match f.f_semantic with
          | Some s -> Some { if_name = f.f_name; if_semantic = s; if_width = f.f_bits }
          | None -> None)
        h.h_fields;
    budget = budget_of_header h;
  }

let has_intent_annotation (h : P4.Typecheck.header_def) =
  List.exists (fun (a : P4.Ast.annotation) -> a.aname = "intent") h.h_annots

let of_program ?header tenv =
  match header with
  | Some name -> (
      match P4.Typecheck.find_header tenv name with
      | Some h -> Ok (of_header h)
      | None -> Error (Printf.sprintf "no header named %s" name))
  | None -> (
      let headers = P4.Typecheck.headers tenv in
      match List.filter has_intent_annotation headers with
      | [ h ] -> Ok (of_header h)
      | _ :: _ :: _ -> Error "multiple @intent headers; name one explicitly"
      | [] -> (
          let by_name =
            List.filter
              (fun (h : P4.Typecheck.header_def) ->
                let lower = String.lowercase_ascii h.h_name in
                (* contains "intent" *)
                let rec contains i =
                  i + 6 <= String.length lower && (String.sub lower i 6 = "intent" || contains (i + 1))
                in
                contains 0)
              headers
          in
          match by_name with
          | [ h ] -> Ok (of_header h)
          | [] -> Error "no intent header found (tag one with @intent)"
          | _ -> Error "multiple intent-like headers; tag one with @intent"))

let of_source ?header src =
  match Prelude.check_result src with
  | Error e -> Error e
  | Ok tenv -> of_program ?header tenv

let cost_of_field (f : P4.Typecheck.field) =
  match P4.Ast.find_annotation "cost" f.f_annots with
  | None -> None
  | Some a -> (
      match a.args with
      | [ P4.Ast.AInt c ] -> Some (Int64.to_float c)
      | [ P4.Ast.AIdent ("inf" | "infinity") ] -> Some infinity
      | [ P4.Ast.AString s ] -> float_of_string_opt s
      | _ -> None)

let register_custom_semantics registry (h : P4.Typecheck.header_def) =
  let rec go = function
    | [] -> Ok ()
    | (f : P4.Typecheck.field) :: rest -> (
        match f.f_semantic with
        | None -> go rest
        | Some s when Semantic.mem registry s -> go rest
        | Some s -> (
            match cost_of_field f with
            | Some c ->
                Semantic.register registry
                  {
                    Semantic.name = s;
                    width_bits = f.f_bits;
                    sw_cost = c;
                    descr = Printf.sprintf "custom semantic from intent %s" h.h_name;
                  };
                go rest
            | None ->
                Error
                  (Printf.sprintf
                     "intent field %s declares unknown semantic %S without @cost"
                     f.f_name s)))
  in
  go h.h_fields

(* Hot path of the compile-cache key: no Printf. *)
let canonical t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.name;
  Buffer.add_char buf '{';
  List.iter
    (fun f ->
      Buffer.add_string buf f.if_name;
      Buffer.add_char buf '=';
      Buffer.add_string buf f.if_semantic;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int f.if_width);
      Buffer.add_char buf ';')
    t.fields;
  Buffer.add_char buf '}';
  (* Only budgeted intents extend the key, so every pre-existing cache
     entry keeps its exact canonical form. *)
  (match t.budget with
  | Some b ->
      Buffer.add_char buf '@';
      Buffer.add_string buf (string_of_float b)
  | None -> ());
  Buffer.contents buf

let to_p4 t =
  let buf = Buffer.create 128 in
  (match t.budget with
  | Some b -> Buffer.add_string buf (Printf.sprintf "@budget(%.0f)\n" b)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "@intent\nheader %s {\n" t.name);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  @semantic(%S) bit<%d> %s;\n" f.if_semantic f.if_width f.if_name))
    t.fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "intent %s {%a}" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf f -> Format.fprintf ppf "%s:%d" f.if_semantic f.if_width))
    t.fields
