(** C host-stub synthesis (§4 step 4).

    Emits a self-contained header with one constant-time accessor per
    provided field of the selected completion path — direct shifted loads
    for byte-aligned fields, a generic bit extractor otherwise — plus
    declarations for the SoftNIC shims the user must link for missing
    semantics, and the context configuration words to program over the
    control channel. *)

val ctype_for : int -> string
(** Smallest of uint8/16/32/64_t holding the given bit width. *)

val sanitize : string -> string
(** Replace non-identifier characters with underscores. *)

val accessor_name : nic:string -> string -> string
(** [opendesc_<nic>_rx_<field>], sanitised to a C identifier. *)

val generate :
  nic:string ->
  path:Path.t ->
  missing:(string * float) list ->
  config:Context.assignment ->
  string
(** The full generated header. [missing] pairs each software semantic
    with its w(s) cost (documented in the output). *)

val datapath :
  nic:string ->
  path:Path.t ->
  requested:string list ->
  missing:(string * float) list ->
  config:Context.assignment ->
  tx_format:Descparser.t option ->
  string
(** A complete minimalist driver datapath in C — the "generated
    minimalist driver datapath" the paper's abstract aims at: the
    accessor header ({!generate}) plus ring structures, an
    [opendesc_<nic>_rx_burst] loop that consumes completions, fills a
    per-packet metadata struct (hardware reads inline, software shims
    called where needed), and an [opendesc_<nic>_tx_prepare] that builds
    TX descriptors in the selected format. *)
