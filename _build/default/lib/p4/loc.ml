(** Source positions for error reporting and adjacency checks. *)

type pos = { line : int; col : int; off : int } [@@deriving show, eq]

type span = { left : pos; right : pos } [@@deriving show, eq]
(** [left] is inclusive, [right] exclusive (one past the last char). *)

let dummy_pos = { line = 0; col = 0; off = -1 }
let dummy = { left = dummy_pos; right = dummy_pos }
let merge a b = { left = a.left; right = b.right }

let pp_short ppf s = Format.fprintf ppf "%d:%d" s.left.line s.left.col

(** True when [b] starts exactly where [a] ends (no whitespace between) —
    used to distinguish the [>>] shift operator from two closing angle
    brackets of nested type arguments. *)
let adjacent a b = a.right.off = b.left.off
