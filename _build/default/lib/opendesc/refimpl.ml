(* Reference P4 feature implementations, executed by P4.Interp.

   Conventions: feature controls take the standard parsed headers as a
   parameter named [hdrs], intrinsic metadata as [meta], and write their
   value to an out parameter named [result]. The standard parser's
   out-parameter is also named [hdrs], so parser and controls share the
   same store paths. *)

let source =
  {|
/* Standard wire headers for reference implementations. */
header std_eth_t {
  bit<48> dst;
  bit<48> src;
  bit<16> ethertype;
}
header std_vlan_t {
  bit<3>  pcp;
  bit<1>  dei;
  bit<12> vid;
  bit<16> ethertype;
}
header std_ipv4_t {
  bit<4>  version;
  bit<4>  ihl;
  bit<8>  tos;
  bit<16> total_len;
  bit<16> identification;
  bit<3>  flags;
  bit<13> frag_off;
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> hdr_checksum;
  bit<32> src;
  bit<32> dst;
}
header std_ipv6_t {
  bit<4>   version;
  bit<8>   traffic_class;
  bit<20>  flow_label;
  bit<16>  payload_len;
  bit<8>   next_header;
  bit<8>   hop_limit;
  bit<64>  src_hi;
  bit<64>  src_lo;
  bit<64>  dst_hi;
  bit<64>  dst_lo;
}
header std_tcp_t {
  bit<16> sport;
  bit<16> dport;
  bit<32> seq;
  bit<32> ack;
  bit<4>  doff;
  bit<4>  rsvd;
  bit<8>  tcp_flags;
  bit<16> window;
  bit<16> checksum;
  bit<16> urgent;
}
header std_udp_t {
  bit<16> sport;
  bit<16> dport;
  bit<16> length;
  bit<16> checksum;
}
struct std_headers_t {
  std_eth_t  eth;
  std_vlan_t vlan;
  std_ipv4_t ipv4;
  std_ipv6_t ipv6;
  std_tcp_t  tcp;
  std_udp_t  udp;
}
struct std_meta_t { bit<16> pkt_len; }

/* The standard wire parser (single VLAN tag; IPv4 options skipped via
   advance; reference features assume well-formed packets). */
parser StdParser(packet_in pkt, out std_headers_t hdrs) {
  state start {
    pkt.extract(hdrs.eth);
    transition select(hdrs.eth.ethertype) {
      0x8100: parse_vlan;
      0x0800: parse_ipv4;
      0x86dd: parse_ipv6;
      default: accept;
    }
  }
  state parse_vlan {
    pkt.extract(hdrs.vlan);
    transition select(hdrs.vlan.ethertype) {
      0x0800: parse_ipv4;
      0x86dd: parse_ipv6;
      default: accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdrs.ipv4);
    pkt.advance(((bit<32>)(hdrs.ipv4.ihl)) * 32 - 160);
    transition select(hdrs.ipv4.protocol) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_ipv6 {
    pkt.extract(hdrs.ipv6);
    transition select(hdrs.ipv6.next_header) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_tcp { pkt.extract(hdrs.tcp); transition accept; }
  state parse_udp { pkt.extract(hdrs.udp); transition accept; }
}

/* --- reference feature implementations ---------------------------- */

@feature("vlan")
control RefVlan(in std_headers_t hdrs, out bit<16> result) {
  apply {
    if (hdrs.vlan.isValid()) {
      result = hdrs.vlan.pcp ++ hdrs.vlan.dei ++ hdrs.vlan.vid;
    } else {
      result = 0;
    }
  }
}

@feature("ip_id")
control RefIpId(in std_headers_t hdrs, out bit<16> result) {
  apply {
    if (hdrs.ipv4.isValid()) {
      result = hdrs.ipv4.identification;
    } else {
      result = 0;
    }
  }
}

@feature("pkt_len")
control RefPktLen(in std_meta_t meta, out bit<16> result) {
  apply { result = meta.pkt_len; }
}

@feature("l3_type")
control RefL3Type(in std_headers_t hdrs, out bit<4> result) {
  apply {
    if (hdrs.ipv4.isValid()) {
      result = 1;
    } else {
      if (hdrs.ipv6.isValid()) {
        result = 2;
      } else {
        result = 0;
      }
    }
  }
}

@feature("l4_type")
control RefL4Type(in std_headers_t hdrs, out bit<4> result) {
  apply {
    if (hdrs.tcp.isValid()) {
      result = 1;
    } else {
      if (hdrs.udp.isValid()) {
        result = 2;
      } else {
        if (hdrs.ipv4.isValid() || hdrs.ipv6.isValid()) {
          result = 3;
        } else {
          result = 0;
        }
      }
    }
  }
}

@feature("rss_type")
control RefRssType(in std_headers_t hdrs, out bit<8> result) {
  apply {
    if (hdrs.ipv4.isValid()) {
      if (hdrs.tcp.isValid()) {
        result = 2;
      } else {
        if (hdrs.udp.isValid()) {
          result = 3;
        } else {
          result = 1;
        }
      }
    } else {
      result = 0;
    }
  }
}
|}

let p4_semantics = [ "vlan"; "ip_id"; "pkt_len"; "l3_type"; "l4_type"; "rss_type" ]

let interp_overhead = 3.0

let tenv_memo = lazy (Prelude.check source)

let tenv () = Lazy.force tenv_memo

let feature_annotation (c : P4.Typecheck.control_def) =
  match P4.Ast.find_annotation "feature" c.ct_annots with
  | Some a -> P4.Ast.annotation_string a
  | None -> None

let feature_controls () =
  List.filter_map
    (fun (c : P4.Typecheck.control_def) ->
      match feature_annotation c with Some sem -> Some (sem, c) | None -> None)
    (P4.Typecheck.controls (tenv ()))

let std_parser () =
  match P4.Typecheck.find_parser (tenv ()) "StdParser" with
  | Some p -> p
  | None -> failwith "refimpl: StdParser missing"

let interpret sem =
  match List.assoc_opt sem (feature_controls ()) with
  | None -> Error (Printf.sprintf "no reference P4 implementation for %s" sem)
  | Some control ->
      let tenv = tenv () in
      let parser = std_parser () in
      Ok
        (fun (pkt : Packet.Pkt.t) ->
          let store = P4.Interp.create tenv in
          P4.Interp.set_int store [ "meta"; "pkt_len" ] ~width:16
            (Int64.of_int (min pkt.len 0xffff));
          (try
             P4.Interp.run_parser store parser ~packet:pkt.buf ~len:pkt.len
               ~param:"pkt"
           with P4.Interp.Runtime_error _ -> ());
          (try P4.Interp.run_control store control
           with P4.Interp.Runtime_error _ -> ());
          match P4.Interp.get_int store [ "result" ] with
          | Some v -> v
          | None -> 0L)

let feature ?cost_cycles sem =
  match interpret sem with
  | Error _ as e -> e
  | Ok run ->
      let base = Semantic.default () in
      let cost =
        match cost_cycles with
        | Some c -> c
        | None ->
            let w = Semantic.cost base sem in
            if Float.is_finite w then w *. interp_overhead else 100.0
      in
      let width = match Semantic.width base sem with Some w -> w | None -> 64 in
      Ok
        {
          Softnic.Feature.semantic = sem;
          width_bits = width;
          cost_cycles = cost;
          compute = (fun _env pkt _view -> run pkt);
        }

let registry () =
  let r = Softnic.Registry.builtin () in
  List.iter
    (fun sem ->
      match feature sem with
      | Ok f -> Softnic.Registry.register r f
      | Error _ -> ())
    p4_semantics;
  r
