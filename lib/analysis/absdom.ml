(* Product abstract domain for symbolic deparser evaluation: unsigned
   integer intervals x known-bits (tristate bits), plus abstract
   booleans. Every transfer function mirrors the concrete semantics of
   P4.Eval — bit<w> arithmetic wraps at w, widthless literals are
   infinite precision, comparisons are unsigned — so the soundness
   invariant is: whenever the concrete evaluator produces a value from
   inputs contained in the abstract inputs, that value is contained in
   the abstract result (VUnknown is contained in everything). *)

type abool = BTrue | BFalse | BMaybe

type num = {
  lo : int64;  (* unsigned lower bound *)
  hi : int64;  (* unsigned upper bound; lo <=u hi *)
  kmask : int64;  (* bit set -> that bit's value is known *)
  kval : int64;  (* known bit values; kval land (lnot kmask) = 0 *)
  width : int option;  (* bit<w> width; None for integer literals *)
}

type t = Num of num | Bool of abool | Top | Bot

(* ---- unsigned int64 helpers ---- *)

let ule a b = Int64.unsigned_compare a b <= 0
let ult a b = Int64.unsigned_compare a b < 0
let umin a b = if ule a b then a else b
let umax a b = if ule a b then b else a
let mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* values below 2^62 add/subtract without signed overflow *)
let small v = 0L <= v && v < 0x4000_0000_0000_0000L

let bit_len v =
  let rec go n v = if v = 0L then n else go (n + 1) (Int64.shift_right_logical v 1) in
  if v < 0L then 64 else go 0 v

(* ---- normalisation: reconcile interval and known bits ---- *)

let norm (n : num) : t =
  (* bounds implied by the known bits: unknown bits all-0 / all-1 *)
  let minb = n.kval in
  let maxb =
    let m = Int64.logor n.kval (Int64.lognot n.kmask) in
    match n.width with Some w -> Int64.logand m (mask w) | None -> m
  in
  let lo = umax n.lo minb and hi = umin n.hi maxb in
  if ult hi lo then Bot
  else
    (* bits above the top bit of a small hi are known zero *)
    let kmask, kval =
      if small hi then (Int64.logor n.kmask (Int64.lognot (mask (bit_len hi))), n.kval)
      else (n.kmask, n.kval)
    in
    if Int64.logand kval (Int64.lognot kmask) <> 0L then Bot
    else if kmask = -1L then
      (* fully known: a singleton *)
      if ule lo kval && ule kval hi then Num { lo = kval; hi = kval; kmask; kval; width = n.width }
      else Bot
    else Num { lo; hi; kmask; kval; width = n.width }

let num ?width ~lo ~hi ~kmask ~kval () = norm { lo; hi; kmask; kval; width }

(* ---- constructors ---- *)

let trunc width v =
  match width with Some w -> Int64.logand v (mask w) | None -> v

let const ?width v =
  let v = trunc width v in
  Num { lo = v; hi = v; kmask = -1L; kval = v; width }

let of_width w = Num { lo = 0L; hi = mask w; kmask = Int64.lognot (mask w); kval = 0L; width = Some w }

let full_range width =
  match width with
  | Some w -> of_width w
  | None -> Num { lo = 0L; hi = -1L; kmask = 0L; kval = 0L; width = None }

let of_values ?width = function
  | [] -> Bot
  | v0 :: rest as vs ->
      let vs = List.map (trunc width) vs and v0 = trunc width v0 in
      let lo = List.fold_left umin v0 vs and hi = List.fold_left umax v0 vs in
      let diff = List.fold_left (fun acc v -> Int64.logor acc (Int64.logxor v v0)) 0L (List.map (trunc width) rest) in
      let kmask = Int64.lognot diff in
      num ?width ~lo ~hi ~kmask ~kval:(Int64.logand v0 kmask) ()

let of_range ?width ~lo ~hi () = num ?width ~lo ~hi ~kmask:0L ~kval:0L ()

let of_bool b = Bool (if b then BTrue else BFalse)

let singleton = function
  | Num { kmask = -1L; kval; _ } -> Some kval
  | Num { lo; hi; _ } when lo = hi -> Some lo
  | _ -> None

let range = function Num n -> Some (n.lo, n.hi) | _ -> None

(* ---- membership (the soundness relation) ---- *)

let mem_int v = function
  | Top -> true
  | Bot | Bool _ -> false
  | Num n -> ule n.lo v && ule v n.hi && Int64.logand v n.kmask = n.kval

let mem_bool b = function
  | Top -> true
  | Bot | Num _ -> false
  | Bool BMaybe -> true
  | Bool BTrue -> b
  | Bool BFalse -> not b

let mem_value (v : P4.Eval.value) t =
  match v with
  | P4.Eval.VUnknown -> true  (* unknown concrete is contained everywhere *)
  | P4.Eval.VInt { v; _ } -> mem_int v t
  | P4.Eval.VBool b -> mem_bool b t

(* ---- lattice operations ---- *)

let join_abool a b = if a = b then a else BMaybe

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Bool x, Bool y -> Bool (join_abool x y)
  | Num x, Num y when x.width = y.width ->
      num ?width:x.width ~lo:(umin x.lo y.lo) ~hi:(umax x.hi y.hi)
        ~kmask:(Int64.logand (Int64.logand x.kmask y.kmask)
                  (Int64.lognot (Int64.logxor x.kval y.kval)))
        ~kval:(Int64.logand x.kval
                 (Int64.logand (Int64.logand x.kmask y.kmask)
                    (Int64.lognot (Int64.logxor x.kval y.kval))))
        ()
  | Num _, Num _ | Num _, Bool _ | Bool _, Num _ -> Top

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Bool x, Bool y -> if x = y then Bool x else if x = BMaybe then Bool y else if y = BMaybe then Bool x else Bot
  | Num x, Num y ->
      (* widths should agree when both known; keep the first (the
         variable's) width, which governs later wraps *)
      let kmask = Int64.logor x.kmask y.kmask in
      let conflict = Int64.logand (Int64.logand x.kmask y.kmask) (Int64.logxor x.kval y.kval) in
      if conflict <> 0L then Bot
      else
        num ?width:x.width ~lo:(umax x.lo y.lo) ~hi:(umin x.hi y.hi) ~kmask
          ~kval:(Int64.logor x.kval y.kval) ()
  | Num _, Bool _ | Bool _, Num _ -> Bot

(* exclude a single value from a numeric abstraction (for refining the
   negative side of an equality): only interval endpoints can be
   trimmed exactly *)
let exclude v t =
  match t with
  | Num n when n.lo = v && n.hi = v -> Bot
  | Num n when n.lo = v -> norm { n with lo = Int64.add n.lo 1L }
  | Num n when n.hi = v -> norm { n with hi = Int64.sub n.hi 1L }
  | t -> t

(* ---- truth testing (mirrors P4.Eval.as_bool) ---- *)

let truth = function
  | Bool b -> b
  | Top | Bot -> BMaybe
  | Num n ->
      if n.lo = 0L && n.hi = 0L then BFalse
      else if ult 0L n.lo || Int64.logand n.kval n.kmask <> 0L then BTrue
      else BMaybe

let not_abool = function BTrue -> BFalse | BFalse -> BTrue | BMaybe -> BMaybe

(* ---- arithmetic transfer functions (mirror P4.Eval.arith) ---- *)

let retain_width a b = match (a, b) with Some w, _ -> Some w | None, w -> w

(* exact path: both operands are singletons -> run the concrete
   evaluator's own arithmetic, so the mirror cannot drift *)
let concrete_binop op x xw y yw =
  match P4.Eval.(arith_value op (VInt { v = x; width = xw }) (VInt { v = y; width = yw })) with
  | P4.Eval.VInt { v; width } -> const ?width v
  | P4.Eval.VBool b -> of_bool b
  | P4.Eval.VUnknown -> Top

let cmp_abool op (x : num) (y : num) =
  let known_conflict =
    let common = Int64.logand x.kmask y.kmask in
    Int64.logand common (Int64.logxor x.kval y.kval) <> 0L
  in
  match op with
  | P4.Ast.Eq -> (
      match (singleton (Num x), singleton (Num y)) with
      | Some a, Some b -> if a = b then BTrue else BFalse
      | _ ->
          if ult x.hi y.lo || ult y.hi x.lo || known_conflict then BFalse
          else BMaybe)
  | P4.Ast.Neq -> (
      match (singleton (Num x), singleton (Num y)) with
      | Some a, Some b -> if a = b then BFalse else BTrue
      | _ ->
          if ult x.hi y.lo || ult y.hi x.lo || known_conflict then BTrue
          else BMaybe)
  | P4.Ast.Lt -> if ult x.hi y.lo then BTrue else if ule y.hi x.lo then BFalse else BMaybe
  | P4.Ast.Le -> if ule x.hi y.lo then BTrue else if ult y.hi x.lo then BFalse else BMaybe
  | P4.Ast.Gt -> if ult y.hi x.lo then BTrue else if ule x.hi y.lo then BFalse else BMaybe
  | P4.Ast.Ge -> if ule y.hi x.lo then BTrue else if ult x.hi y.lo then BFalse else BMaybe
  | _ -> BMaybe

let binop op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Bool x, Bool y -> (
      match op with
      | P4.Ast.Eq -> Bool (if x = BMaybe || y = BMaybe then BMaybe else if x = y then BTrue else BFalse)
      | P4.Ast.Neq -> Bool (if x = BMaybe || y = BMaybe then BMaybe else if x <> y then BTrue else BFalse)
      | P4.Ast.LAnd | P4.Ast.LOr -> Top (* handled by the short-circuit eval *)
      | _ -> Top)
  | Num x, Num y -> (
      match (singleton a, singleton b) with
      | Some sx, Some sy -> concrete_binop op sx x.width sy y.width
      | _ -> (
          let w = retain_width x.width y.width in
          let overflow_top = full_range w in
          match op with
          | P4.Ast.Eq | P4.Ast.Neq | P4.Ast.Lt | P4.Ast.Le | P4.Ast.Gt | P4.Ast.Ge ->
              Bool (cmp_abool op x y)
          | P4.Ast.Add ->
              if small x.hi && small y.hi then begin
                let hi = Int64.add x.hi y.hi in
                match w with
                | Some ww when ult (mask ww) hi -> overflow_top
                | _ -> num ?width:w ~lo:(Int64.add x.lo y.lo) ~hi ~kmask:0L ~kval:0L ()
              end
              else overflow_top
          | P4.Ast.Sub ->
              if small x.hi && small y.hi && ule y.hi x.lo then
                num ?width:w ~lo:(Int64.sub x.lo y.hi) ~hi:(Int64.sub x.hi y.lo)
                  ~kmask:0L ~kval:0L ()
              else overflow_top
          | P4.Ast.Mul ->
              if
                small x.hi && small y.hi
                && (y.hi = 0L || ule x.hi (Int64.div 0x3FFF_FFFF_FFFF_FFFFL (umax y.hi 1L)))
              then begin
                let hi = Int64.mul x.hi y.hi in
                match w with
                | Some ww when ult (mask ww) hi -> overflow_top
                | _ -> num ?width:w ~lo:(Int64.mul x.lo y.lo) ~hi ~kmask:0L ~kval:0L ()
              end
              else overflow_top
          | P4.Ast.BAnd ->
              (* known-0 bits of either side are known-0 in the result;
                 bits known-1 in both are known-1 *)
              let k0 =
                Int64.logor
                  (Int64.logand x.kmask (Int64.lognot x.kval))
                  (Int64.logand y.kmask (Int64.lognot y.kval))
              in
              let k1 = Int64.logand (Int64.logand x.kmask x.kval) (Int64.logand y.kmask y.kval) in
              num ?width:w ~lo:0L ~hi:(umin x.hi y.hi) ~kmask:(Int64.logor k0 k1) ~kval:k1 ()
          | P4.Ast.BOr ->
              let k1 =
                Int64.logor (Int64.logand x.kmask x.kval) (Int64.logand y.kmask y.kval)
              in
              let k0 =
                Int64.logand
                  (Int64.logand x.kmask (Int64.lognot x.kval))
                  (Int64.logand y.kmask (Int64.lognot y.kval))
              in
              let hi =
                if small x.hi && small y.hi then mask (max (bit_len x.hi) (bit_len y.hi))
                else -1L
              in
              let t = num ?width:w ~lo:(umax x.lo y.lo) ~hi ~kmask:(Int64.logor k0 k1) ~kval:k1 () in
              (match (w, t) with Some ww, Num n -> norm { n with hi = umin n.hi (mask ww) } | _ -> t)
          | P4.Ast.BXor ->
              let kmask = Int64.logand x.kmask y.kmask in
              let kval = Int64.logand (Int64.logxor x.kval y.kval) kmask in
              let hi =
                if small x.hi && small y.hi then mask (max (bit_len x.hi) (bit_len y.hi))
                else -1L
              in
              let t = num ?width:w ~lo:0L ~hi ~kmask ~kval () in
              (match (w, t) with Some ww, Num n -> norm { n with hi = umin n.hi (mask ww) } | _ -> t)
          | P4.Ast.Shr -> (
              match singleton b with
              | Some s when 0L <= s && s < 64L ->
                  let s = Int64.to_int s in
                  if small x.hi then
                    num ?width:x.width
                      ~lo:(Int64.shift_right_logical x.lo s)
                      ~hi:(Int64.shift_right_logical x.hi s)
                      ~kmask:0L ~kval:0L ()
                  else full_range x.width
              | _ -> full_range x.width)
          | P4.Ast.Shl | P4.Ast.Div | P4.Ast.Mod | P4.Ast.Concat -> Top
          | P4.Ast.LAnd | P4.Ast.LOr -> Top))
  | Top, _ | _, Top | Num _, Bool _ | Bool _, Num _ -> (
      (* a comparison of unconstrained values is still a boolean *)
      match op with
      | P4.Ast.Eq | P4.Ast.Neq | P4.Ast.Lt | P4.Ast.Le | P4.Ast.Gt | P4.Ast.Ge ->
          Bool BMaybe
      | _ -> Top)

let unop op a =
  match (op, a) with
  | _, Bot -> Bot
  | P4.Ast.LNot, Bool b -> Bool (not_abool b)
  | P4.Ast.LNot, (Num _ as n) -> (
      (* concrete: VBool (v = 0) *)
      match truth n with BTrue -> Bool BFalse | BFalse -> Bool BTrue | BMaybe -> Bool BMaybe)
  | P4.Ast.LNot, Top -> Bool BMaybe
  | P4.Ast.Neg, Num n -> (
      match singleton (Num n) with
      | Some v ->
          let v = Int64.neg v in
          const ?width:n.width (trunc n.width v)
      | None -> full_range n.width)
  | P4.Ast.BitNot, Num n ->
      let kval = trunc n.width (Int64.logand (Int64.lognot n.kval) n.kmask) in
      num ?width:n.width ~lo:0L
        ~hi:(match n.width with Some w -> mask w | None -> -1L)
        ~kmask:n.kmask ~kval ()
  | (P4.Ast.Neg | P4.Ast.BitNot), _ -> Top

(* cast to bit<w> (mirrors P4.Eval's ECast case) *)
let cast_bit w t =
  match t with
  | Bot -> Bot
  | Bool BTrue -> const ~width:w 1L
  | Bool BFalse -> const ~width:w 0L
  | Bool BMaybe -> of_values ~width:w [ 0L; 1L ]
  | Num n when small n.hi && ule n.hi (mask w) ->
      num ~width:w ~lo:n.lo ~hi:n.hi ~kmask:(Int64.logand n.kmask (mask w))
        ~kval:(Int64.logand n.kval (mask w)) ()
  | Num _ | Top -> of_width w

let pp ppf = function
  | Top -> Format.fprintf ppf "T"
  | Bot -> Format.fprintf ppf "_|_"
  | Bool BTrue -> Format.fprintf ppf "true"
  | Bool BFalse -> Format.fprintf ppf "false"
  | Bool BMaybe -> Format.fprintf ppf "bool?"
  | Num n ->
      Format.fprintf ppf "[%Lu,%Lu]" n.lo n.hi;
      if n.kmask <> 0L && not (small n.hi && n.kmask = Int64.lognot (mask (bit_len n.hi))) then
        Format.fprintf ppf "&%Lx=%Lx" n.kmask n.kval

let to_string t = Format.asprintf "%a" pp t
