(* Portability: one application, every NIC in the catalogue.

   The application code below never mentions a vendor: it declares an
   intent, compiles it against whatever NIC is present, and reads
   metadata through the bindings. The compiler absorbs every layout
   difference — which descriptor format is used, which fields are
   hardware, what ends up in software.

   Run with: dune exec examples/multi_nic_portability.exe *)

let intent =
  Opendesc.Intent.make
    [ ("rss", 32); ("vlan", 16); ("pkt_len", 16); ("csum_ok", 1) ]

(* The entire NIC-independent application: count bytes per RSS bucket,
   drop bad checksums, tally VLANs. *)
let app_process bindings env buf len cmpt buckets =
  let read sem =
    match List.assoc sem bindings with
    | Opendesc.Compile.Hardware a -> a.a_get cmpt
    | Opendesc.Compile.Software f ->
        let p = Packet.Pkt.sub buf ~len in
        f.compute env p (Packet.Pkt.parse p)
  in
  if read "csum_ok" = 1L then begin
    let bucket = Int64.to_int (read "rss") land 7 in
    buckets.(bucket) <- buckets.(bucket) + Int64.to_int (read "pkt_len")
  end

let () =
  Printf.printf "%-22s %-9s %-6s %-28s %-28s\n" "nic" "cmpt" "cfg" "hardware" "software";
  let reference = ref None in
  List.iter
    (fun (m : Nic_models.Model.t) ->
      let compiled = Opendesc.Cache.run_exn ~intent m.spec in
      let device = Driver.Device.create_exn ~config:compiled.config m in
      let env = Softnic.Feature.make_env () in
      (* Same seed everywhere: all NICs see identical traffic. *)
      let w = Packet.Workload.make ~seed:123L Packet.Workload.Vlan_tagged in
      let buckets = Array.make 8 0 in
      for _ = 1 to 512 do
        let pkt = Packet.Workload.next w in
        assert (Driver.Device.rx_inject device pkt);
        match Driver.Device.rx_consume device with
        | Some (buf, len, cmpt) -> app_process compiled.bindings env buf len cmpt buckets
        | None -> assert false
      done;
      Printf.printf "%-22s %3dB      %-6s %-28s %-28s\n" m.spec.nic_name
        (Opendesc.Path.size (Opendesc.Compile.path compiled))
        (match compiled.config with [] -> "-" | (_, v) :: _ -> Int64.to_string v)
        (String.concat "," (Opendesc.Compile.hardware compiled))
        (String.concat "," (Opendesc.Compile.missing compiled));
      (* Every NIC must produce the identical application-level result. *)
      match !reference with
      | None -> reference := Some buckets
      | Some r ->
          if r <> buckets then begin
            Printf.printf "!! %s disagrees with the reference buckets\n"
              m.spec.nic_name;
            exit 1
          end)
    (Nic_models.Catalog.all ~intent ());
  print_endline "\nevery NIC produced identical application results";
  (* A second pass over the catalogue recompiles nothing: the cache key
     is the NIC's layout fingerprint, so even freshly loaded specs hit. *)
  List.iter
    (fun (m : Nic_models.Model.t) -> ignore (Opendesc.Cache.run_exn ~intent m.spec))
    (Nic_models.Catalog.all ~intent ());
  print_endline (Opendesc.Cache.stats_line ());
  match !reference with
  | Some buckets ->
      print_endline "bytes per RSS bucket:";
      Array.iteri (Printf.printf "  bucket %d: %d bytes\n") buckets
  | None -> ()
