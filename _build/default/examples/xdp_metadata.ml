(* eBPF/XDP stub generation, the prototype's host-side target: "The
   OpenDesc prototype enables access to the metadata sent from the NIC in
   eBPF through XDP or userlevel programs directly accessing the NIC
   descriptors."

   We compile an intent against the ConnectX model twice — once for the
   full CQE, once letting Eq. 1 pick the compressed format — and print
   the generated XDP programs. Note how the metadata struct, offsets, and
   the software-fallback comments adapt while the program structure stays
   fixed.

   Run with: dune exec examples/xdp_metadata.exe *)

let () =
  let model = Nic_models.Mlx5.model () in
  let intent = Opendesc.Intent.make [ ("rss", 32); ("vlan", 16); ("pkt_len", 32) ] in

  print_endline "=== α = 0.05 (DMA is cheap: full 64B CQE selected) ===";
  let full = Opendesc.Compile.run_exn ~alpha:0.05 ~intent model.spec in
  Printf.printf "-- %s\n\n" (Opendesc.Report.summary_line full);
  print_endline (Opendesc.Compile.ebpf_source full);

  print_endline "=== α = 2.0 (default: compressed 8B mini-CQE selected) ===";
  let mini = Opendesc.Compile.run_exn ~intent model.spec in
  Printf.printf "-- %s\n\n" (Opendesc.Report.summary_line mini);
  print_endline (Opendesc.Compile.ebpf_source mini);

  print_endline "=== matching C header for user-level descriptor access ===";
  print_endline (Opendesc.Compile.c_source mini)
