lib/driver/dma.mli:
