lib/opendesc/report.mli: Compile Format Nic_spec
