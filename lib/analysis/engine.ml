module D = Diagnostic

type input = {
  in_tenv : P4.Typecheck.t;
  in_deparser : P4.Typecheck.control_def option;
      (** pass the resolved deparser, or [None] to locate it *)
  in_desc_parser : P4.Typecheck.parser_def option;
  in_registry : Registry_view.t;
  in_intent : (string * int) list option;  (** requested (semantic, width) *)
  in_line_offset : int;  (** prelude lines to subtract from spans *)
}

(* One field of a concrete completion layout, as the codegen pass sees
   it. Kept independent of the opendesc Path type so the bounds check is
   unit-testable against hand-built layouts. *)
type afield = {
  af_name : string;
  af_header : string;
  af_semantic : string option;
  af_bit_off : int;
  af_bits : int;
  af_span : P4.Loc.span;
}

let contains_sub hay needle =
  let hay = String.lowercase_ascii hay in
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let is_intent_header (h : P4.Typecheck.header_def) =
  P4.Ast.find_annotation "intent" h.h_annots <> None
  || contains_sub h.h_name "intent"

(* ------------------------------------------------------------------ *)
(* Deparser preparation: IR, context assignments, distinct runs. *)

type group = {
  g_index : int;  (** encounter order — matches Path.enumerate's p_index *)
  g_run : Dep_ir.run;
  g_assigns : Ctxdom.assignment list;
}

type dep_prep = {
  p_ctrl : P4.Typecheck.control_def;
  p_ir : Dep_ir.t;
  p_ctx : (P4.Typecheck.cparam * P4.Typecheck.header_def) option;
  p_assignments : Ctxdom.assignment list;
  p_runs : Dep_ir.run list;  (** every run, including forked ones *)
  p_assign_runs : (Ctxdom.assignment * Dep_ir.run) list;
      (** the same runs, with the configuration that produced each —
          several runs per assignment when undecidable branches forked *)
  p_groups : group list;  (** distinct emit sequences *)
}

let fields_of_run (r : Dep_ir.run) : afield list =
  List.concat_map
    (fun (x : Dep_ir.exec_emit) ->
      let h = x.Dep_ir.x_emit.Dep_ir.e_header in
      List.map
        (fun (f : P4.Typecheck.field) ->
          {
            af_name = f.f_name;
            af_header = h.h_name;
            af_semantic = f.f_semantic;
            af_bit_off = x.Dep_ir.x_bit_off + f.f_bit_off;
            af_bits = f.f_bits;
            af_span = f.f_span;
          })
        h.h_fields)
    r.Dep_ir.r_emits

let describe_run (r : Dep_ir.run) =
  "["
  ^ String.concat "; "
      (List.map (fun (x : Dep_ir.exec_emit) -> x.Dep_ir.x_emit.Dep_ir.e_arg) r.Dep_ir.r_emits)
  ^ "]"

let run_semantics r =
  List.filter_map (fun af -> af.af_semantic) (fields_of_run r)
  |> List.sort_uniq String.compare

let last_emit_span (r : Dep_ir.run) =
  match List.rev r.Dep_ir.r_emits with
  | x :: _ -> Some x.Dep_ir.x_emit.Dep_ir.e_span
  | [] -> None

let group_runs (runs : (Ctxdom.assignment * Dep_ir.run) list) : group list =
  let key (r : Dep_ir.run) =
    List.map (fun (x : Dep_ir.exec_emit) -> x.Dep_ir.x_emit.Dep_ir.e_id) r.Dep_ir.r_emits
  in
  let groups : (int list * Dep_ir.run * Ctxdom.assignment list ref) list ref =
    ref []
  in
  List.iter
    (fun (a, r) ->
      let k = key r in
      match List.find_opt (fun (k', _, _) -> k' = k) !groups with
      | Some (_, _, assigns) -> assigns := a :: !assigns
      | None -> groups := !groups @ [ (k, r, ref [ a ]) ])
    runs;
  List.mapi
    (fun i (_, r, assigns) ->
      { g_index = i; g_run = r; g_assigns = List.rev !assigns })
    !groups

let locate_deparser tenv =
  let has_cmpt_out c = Dep_ir.out_param c <> None in
  let annotated (c : P4.Typecheck.control_def) =
    P4.Ast.find_annotation "cmpt_deparser" c.ct_annots <> None
  in
  let candidates = List.filter has_cmpt_out (P4.Typecheck.controls tenv) in
  match List.filter annotated candidates with
  | [ c ] -> Ok (Some c)
  | _ :: _ :: _ -> Error "multiple @cmpt_deparser controls"
  | [] -> (
      match candidates with
      | [ c ] -> Ok (Some c)
      | [] -> Ok None
      | _ -> Error "multiple deparser candidates; tag one with @cmpt_deparser")

let prepare add (inp : input) : dep_prep option =
  let tenv = inp.in_tenv in
  let ctrl =
    match inp.in_deparser with
    | Some c -> Some c
    | None -> (
        match locate_deparser tenv with
        | Ok (Some c) -> Some c
        | Ok None ->
            (* An intent description has no deparser by design; anything
               else is a malformed interface. *)
            if not (List.exists is_intent_header (P4.Typecheck.headers tenv))
            then
              add
                (D.make ~code:"OD002" ~severity:D.Error
                   "no completion deparser found (no control takes a cmpt_out)");
            None
        | Error msg ->
            add (D.make ~code:"OD002" ~severity:D.Error "%s" msg);
            None)
  in
  match ctrl with
  | None -> None
  | Some ctrl -> (
      match Dep_ir.of_control tenv ctrl with
      | Error msg ->
          add (D.make ~span:ctrl.ct_span ~code:"OD002" ~severity:D.Error "%s" msg);
          None
      | Ok ir ->
          let ctx = Ctxdom.find_in ctrl.ct_params in
          let assignments =
            match ctx with
            | None -> [ [] ]
            | Some (_, h) -> (
                match Ctxdom.enumerate h with
                | Ok a -> a
                | Error msg ->
                    add
                      (D.make ~span:h.h_span ~code:"OD002" ~severity:D.Error
                         "%s" msg);
                    [ [] ])
          in
          let ctx_name = match ctx with Some (p, _) -> p.c_name | None -> "ctx" in
          let consts = P4.Typecheck.const_env tenv in
          let runs =
            List.concat_map
              (fun a ->
                let ctx_env = Ctxdom.env_of ~param_name:ctx_name a in
                List.map (fun r -> (a, r)) (Dep_ir.run ~consts ~ctx_env ir))
              assignments
          in
          Some
            {
              p_ctrl = ctrl;
              p_ir = ir;
              p_ctx = ctx;
              p_assignments = assignments;
              p_runs = List.map snd runs;
              p_assign_runs = runs;
              p_groups = group_runs runs;
            })

(* ------------------------------------------------------------------ *)
(* Pass 1: layout safety. *)

let slot_bytes (ctrl : P4.Typecheck.control_def) =
  Option.bind
    (P4.Ast.find_annotation "cmpt_slot" ctrl.ct_annots)
    P4.Ast.annotation_int

let layout_pass add (prep : dep_prep) =
  let slot = slot_bytes prep.p_ctrl in
  List.iter
    (fun g ->
      let r = g.g_run in
      let desc = describe_run r in
      let span = last_emit_span r in
      if r.Dep_ir.r_total_bits mod 8 <> 0 then
        add
          (D.make ?span ~code:"OD003" ~severity:D.Error
             "completion path %s totals %d bits, not a byte multiple; the \
              device cannot DMA it"
             desc r.Dep_ir.r_total_bits)
      else begin
        let size = r.Dep_ir.r_total_bits / 8 in
        match slot with
        | Some s when size > s ->
            add
              (D.make ?span ~code:"OD004" ~severity:D.Error
                 "completion path %s is %d bytes, exceeding the declared \
                  %d-byte DMA completion slot"
                 desc size s)
        | _ -> ()
      end;
      (* The same header emitted twice writes every field at two offsets. *)
      let seen_args = Hashtbl.create 4 in
      List.iter
        (fun (x : Dep_ir.exec_emit) ->
          let arg = x.Dep_ir.x_emit.Dep_ir.e_arg in
          if Hashtbl.mem seen_args arg then
            add
              (D.make ~span:x.Dep_ir.x_emit.Dep_ir.e_span ~code:"OD005"
                 ~severity:D.Warning
                 "header %s is emitted twice on completion path %s; its \
                  fields are written twice at different offsets"
                 arg desc)
          else Hashtbl.add seen_args arg ())
        r.Dep_ir.r_emits;
      (* A semantic carried twice on one path: only the first copy is
         read by accessors. Duplicates caused by re-emitting the same
         header are already covered by OD005. *)
      let header_count hname =
        List.length
          (List.filter
             (fun (x : Dep_ir.exec_emit) ->
               x.Dep_ir.x_emit.Dep_ir.e_header.h_name = hname)
             r.Dep_ir.r_emits)
      in
      let seen_sems : (string, string) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun af ->
          match af.af_semantic with
          | None -> ()
          | Some s -> (
              match Hashtbl.find_opt seen_sems s with
              | Some prev_header
                when prev_header = af.af_header && header_count af.af_header > 1
                ->
                  () (* re-emitted header; OD005 already fired *)
              | Some _ ->
                  add
                    (D.make ~span:af.af_span ~code:"OD006" ~severity:D.Warning
                       "completion path %s carries semantic %S twice (only \
                        the first copy is read)"
                       desc s)
              | None -> Hashtbl.add seen_sems s af.af_header))
        (fields_of_run r))
    prep.p_groups

(* ------------------------------------------------------------------ *)
(* Pass 2: path feasibility and dead code. *)

let rec expr_paths (e : P4.Ast.expr) acc =
  match P4.Eval.path_of_expr e with
  | Some p -> p :: acc
  | None -> (
      match e with
      | P4.Ast.EUnop (_, a) | P4.Ast.ECast (_, a) -> expr_paths a acc
      | P4.Ast.EBinop (_, a, b) | P4.Ast.EIndex (a, b) ->
          expr_paths a (expr_paths b acc)
      | P4.Ast.ETernary (a, b, c) -> expr_paths a (expr_paths b (expr_paths c acc))
      | P4.Ast.ECall (f, _, args) ->
          List.fold_left (fun acc a -> expr_paths a acc) (expr_paths f acc) args
      | P4.Ast.EMember (b, _) -> expr_paths b acc
      | _ -> acc)

let feasibility_pass add tenv (prep : dep_prep) =
  let ir = prep.p_ir in
  (* OD007: emit sites reached by no run under any configuration. *)
  let reached = Hashtbl.create 8 in
  List.iter
    (fun (r : Dep_ir.run) ->
      List.iter
        (fun (x : Dep_ir.exec_emit) ->
          Hashtbl.replace reached x.Dep_ir.x_emit.Dep_ir.e_id ())
        r.Dep_ir.r_emits)
    prep.p_runs;
  List.iter
    (fun (em : Dep_ir.emit) ->
      if not (Hashtbl.mem reached em.Dep_ir.e_id) then
        add
          (D.make ~span:em.Dep_ir.e_span ~code:"OD007" ~severity:D.Warning
             "emit of %s is dead: no context configuration reaches it"
             em.Dep_ir.e_arg))
    ir.Dep_ir.ir_emits;
  (* OD008: a branch predicate that evaluates the same way under every
     context configuration (evaluated standalone, so nesting under other
     branches does not mask infeasible predicates). Predicates reading
     locals are data-dependent and skipped. *)
  let consts = P4.Typecheck.const_env tenv in
  let ctx_name =
    match prep.p_ctx with Some (p, _) -> p.c_name | None -> "ctx"
  in
  (* Symbolic pass over the same IR: one walk covers every context
     configuration at once, refining context-field abstractions at
     each branch, so it also decides predicates over runtime
     descriptor bytes (which the concrete enumeration must skip). *)
  let sym =
    Symexec.exec
      ~base:
        (Symexec.base_env ~consts ~ctx:prep.p_ctx
           ~params:prep.p_ctrl.ct_params ())
      ir
  in
  List.iter
    (fun ((site, cond) : int * P4.Ast.expr) ->
      let outcomes =
        List.filter_map
          (fun a ->
            let ctx_env = Ctxdom.env_of ~param_name:ctx_name a in
            let env path =
              match ctx_env path with Some v -> Some v | None -> consts path
            in
            P4.Eval.eval_bool env cond)
          prep.p_assignments
      in
      if
        List.length outcomes = List.length prep.p_assignments
        && outcomes <> []
      then begin
        (* decidable from the configuration alone: the concrete
           enumeration is exact and governs this site (OD008) *)
        match List.sort_uniq Bool.compare outcomes with
        | [ b ] ->
            add
              (D.make ~span:(P4.Ast.expr_span cond) ~code:"OD008"
                 ~severity:D.Warning
                 "branch predicate %s is always %b for every context \
                  configuration (%d checked); one side is unreachable"
                 (P4.Pretty.expr_to_string cond)
                 b
                 (List.length prep.p_assignments))
        | _ -> ()
      end
      else
        (* data-dependent: only the symbolic evaluator can reason here *)
        match List.assoc_opt site sym.Symexec.sx_verdicts with
        | None | Some [] -> () (* never reached along a feasible prefix *)
        | Some verdicts ->
            let all v = List.for_all (fun x -> x = v) verdicts in
            if all Absdom.BTrue || all Absdom.BFalse then
              let b = all Absdom.BTrue in
              add
                (D.make ~span:(P4.Ast.expr_span cond) ~code:"OD018"
                   ~severity:D.Warning
                   "branch predicate %s depends on runtime data but is \
                    proved always %b by interval and known-bits analysis; \
                    the %s side's completion paths are unreachable for \
                    every configuration and every descriptor value"
                   (P4.Pretty.expr_to_string cond)
                   b
                   (if b then "false" else "true"))
            else
              add
                (D.make ~span:(P4.Ast.expr_span cond) ~code:"OD019"
                   ~severity:D.Info
                   "branch predicate %s cannot be decided from the context, \
                    even symbolically; completion-path feasibility is \
                    over-approximated (the layout is not selected by \
                    configuration alone)"
                   (P4.Pretty.expr_to_string cond)))
    ir.Dep_ir.ir_ifs;
  (* OD009: context fields with no influence on any branch, through a
     taint closure over local definitions. *)
  match prep.p_ctx with
  | None -> ()
  | Some (param, ctx_header) ->
      let defs = ref [] and conds = ref [] in
      let rec collect nodes =
        List.iter
          (fun (n : Dep_ir.node) ->
            match n with
            | Dep_ir.NIf { i_cond; i_then; i_else; _ } ->
                conds := i_cond :: !conds;
                collect i_then;
                collect i_else
            | Dep_ir.NAssign (l, r) -> (
                match P4.Eval.path_of_expr l with
                | Some p -> defs := (p, expr_paths r []) :: !defs
                | None -> ())
            | Dep_ir.NDecl (n, Some e) -> defs := ([ n ], expr_paths e []) :: !defs
            | _ -> ())
          nodes
      in
      collect ir.Dep_ir.ir_nodes;
      let rec close set =
        let grown =
          List.fold_left
            (fun acc (p, vars) ->
              if List.mem p acc then
                List.fold_left
                  (fun acc v -> if List.mem v acc then acc else v :: acc)
                  acc vars
              else acc)
            set !defs
        in
        if List.length grown = List.length set then set else close grown
      in
      let influencing =
        close (List.concat_map (fun c -> expr_paths c []) !conds)
      in
      let whole_ctx_used = List.mem [ param.P4.Typecheck.c_name ] influencing in
      List.iter
        (fun (f : P4.Typecheck.field) ->
          if
            (not whole_ctx_used)
            && not (List.mem [ param.P4.Typecheck.c_name; f.f_name ] influencing)
          then
            add
              (D.make ~span:f.f_span ~code:"OD009" ~severity:D.Info
                 "context field %s.%s never influences a branch; it cannot \
                  select a completion layout"
                 ctx_header.h_name f.f_name))
        ctx_header.h_fields

(* ------------------------------------------------------------------ *)
(* Pass 2b: accessor certification (OD020). A synthesized accessor is a
   fixed-offset load chosen per configuration; it is only safe when the
   semantic it reads is written at that same offset on EVERY feasible
   completion the device may emit under that configuration. When
   undecidable (runtime-data) branches fork the runs of one assignment,
   each semantic must agree across the forks — otherwise the accessor
   can observe unwritten completion-ring bytes. *)

let describe_assignment (a : Ctxdom.assignment) =
  match a with
  | [] -> "{}"
  | a ->
      "{"
      ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%Ld" k v) a)
      ^ "}"

let certification_pass add tenv (prep : dep_prep) =
  (* Forked runs whose emit sequence is symbolically proved unreachable
     (every matching leaf's path condition is bottom) are not feasible
     completions: an always-true runtime guard must not fail
     certification. *)
  let sym =
    Symexec.exec
      ~base:
        (Symexec.base_env
           ~consts:(P4.Typecheck.const_env tenv)
           ~ctx:prep.p_ctx ~params:prep.p_ctrl.ct_params ())
      prep.p_ir
  in
  let feasible_run (r : Dep_ir.run) =
    let ids =
      List.map (fun (x : Dep_ir.exec_emit) -> x.Dep_ir.x_emit.Dep_ir.e_id) r.Dep_ir.r_emits
    in
    List.exists
      (fun (l : Symexec.leaf) -> l.Symexec.lf_feasible && l.Symexec.lf_emit_ids = ids)
      sym.Symexec.sx_leaves
  in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun a ->
      let runs =
        List.filter_map
          (fun (a', r) -> if a' = a && feasible_run r then Some r else None)
          prep.p_assign_runs
      in
      if List.length runs > 1 then
        let sems =
          List.concat_map run_semantics runs |> List.sort_uniq String.compare
        in
        List.iter
          (fun s ->
            if not (Hashtbl.mem reported s) then
              let placement r =
                List.find_opt (fun af -> af.af_semantic = Some s) (fields_of_run r)
              in
              let placements = List.map placement runs in
              let positions =
                List.sort_uniq Stdlib.compare
                  (List.map
                     (Option.map (fun af -> (af.af_bit_off, af.af_bits)))
                     placements)
              in
              match positions with
              | [ Some _ ] -> () (* same offset and width on every fork *)
              | _ ->
                  Hashtbl.add reported s ();
                  let span =
                    List.find_map
                      (Option.map (fun af -> af.af_span))
                      (List.filter Option.is_some placements)
                  in
                  let where = function
                    | None -> "absent"
                    | Some (af : afield) ->
                        Printf.sprintf "at bit %d (%d bits)" af.af_bit_off
                          af.af_bits
                  in
                  let variants =
                    List.sort_uniq String.compare (List.map where placements)
                  in
                  add
                    (D.make ?span ~code:"OD020" ~severity:D.Error
                       "accessor for semantic %S cannot be certified: \
                        configuration %s admits %d feasible completions and \
                        the field is %s; a fixed-offset read can observe \
                        unwritten completion bytes"
                       s
                       (describe_assignment a)
                       (List.length runs)
                       (String.concat " in one but " variants)))
          sems)
    prep.p_assignments

(* ------------------------------------------------------------------ *)
(* Pass 3: contract consistency. *)

(* Headers whose contents actually cross the interface: emitted on some
   completion run, or named in any emit/extract call of any control or
   parser (packet streams included), or serving as the context. *)
let used_headers tenv (prep : dep_prep option) =
  let used = Hashtbl.create 16 in
  let note_header = function
    | P4.Typecheck.RHeader h -> Hashtbl.replace used h.P4.Typecheck.h_name ()
    | _ -> ()
  in
  let scan_expr tenv scope (e : P4.Ast.expr) =
    match e with
    | P4.Ast.ECall (P4.Ast.EMember (_, meth), _, [ arg ])
      when meth.name = "emit" || meth.name = "extract" -> (
        match P4.Typecheck.type_of_expr tenv scope arg with
        | ty -> note_header ty
        | exception P4.Typecheck.Type_error _ -> ())
    | _ -> ()
  in
  let rec scan_stmt tenv scope (s : P4.Ast.stmt) =
    match s with
    | P4.Ast.SCall e -> scan_expr tenv scope e
    | P4.Ast.SIf (_, th, el) ->
        List.iter (scan_stmt tenv scope) th;
        Option.iter (List.iter (scan_stmt tenv scope)) el
    | P4.Ast.SBlock b -> List.iter (scan_stmt tenv scope) b
    | _ -> ()
  in
  List.iter
    (fun (c : P4.Typecheck.control_def) ->
      let scope = P4.Typecheck.scope_of_control tenv c in
      List.iter (scan_stmt tenv scope) c.ct_body)
    (P4.Typecheck.controls tenv);
  List.iter
    (fun (p : P4.Typecheck.parser_def) ->
      let scope = P4.Typecheck.scope_of_params tenv p.pr_params in
      List.iter
        (fun (st : P4.Ast.parser_state) ->
          List.iter (scan_stmt tenv scope) st.st_stmts)
        p.pr_states)
    (P4.Typecheck.parsers tenv);
  (match prep with
  | Some prep -> (
      List.iter
        (fun g ->
          List.iter
            (fun (x : Dep_ir.exec_emit) ->
              Hashtbl.replace used x.Dep_ir.x_emit.Dep_ir.e_header.h_name ())
            g.g_run.Dep_ir.r_emits)
        prep.p_groups;
      match prep.p_ctx with
      | Some (_, h) -> Hashtbl.replace used h.P4.Typecheck.h_name ()
      | None -> ())
  | None -> ());
  used

let contract_pass add (inp : input) (prep : dep_prep option) (tx_formats : Tx_ir.fmt list) =
  let tenv = inp.in_tenv in
  let registry = inp.in_registry in
  let reported_unknown = Hashtbl.create 8 in
  let unknown ?span s =
    if not (Hashtbl.mem reported_unknown s) then begin
      Hashtbl.add reported_unknown s ();
      add
        (D.make ?span ~code:"OD010" ~severity:D.Warning
           "unknown semantic %S (typo? register it or fix the annotation)" s)
    end
  in
  (* OD010 / OD011 over every @semantic field of every header. *)
  List.iter
    (fun (h : P4.Typecheck.header_def) ->
      List.iter
        (fun (f : P4.Typecheck.field) ->
          match f.f_semantic with
          | None -> ()
          | Some s ->
              if not (registry.Registry_view.known s) then unknown ~span:f.f_span s
              else (
                match registry.Registry_view.width s with
                | Some w when f.f_bits < w ->
                    add
                      (D.make ~span:f.f_span ~code:"OD011" ~severity:D.Warning
                         "field %s.%s (@semantic %S) is %d bits, narrower \
                          than the registry's %d bits; values will be \
                          truncated"
                         h.h_name f.f_name s f.f_bits w)
                | Some w when f.f_bits > w ->
                    add
                      (D.make ~span:f.f_span ~code:"OD011" ~severity:D.Info
                         "field %s.%s (@semantic %S) is %d bits, wider than \
                          the registry's %d bits (the upper bits are zero \
                          padding)"
                         h.h_name f.f_name s f.f_bits w)
                | _ -> ()))
        h.h_fields)
    (P4.Typecheck.headers tenv);
  (* OD012: declared contract surface nothing ever carries. *)
  let used = used_headers tenv prep in
  List.iter
    (fun (h : P4.Typecheck.header_def) ->
      let sems =
        List.filter_map (fun (f : P4.Typecheck.field) -> f.f_semantic) h.h_fields
      in
      if sems <> [] && (not (Hashtbl.mem used h.h_name)) && not (is_intent_header h)
      then
        add
          (D.make ~span:h.h_span ~code:"OD012" ~severity:D.Warning
             "header %s carries @semantic fields but is never emitted to a \
              completion nor extracted from a descriptor; its semantics are \
              unreachable"
             h.h_name))
    (P4.Typecheck.headers tenv);
  (* OD013: dominated paths — same Prov means the same Eq. 1 coverage for
     every intent, so the larger layout (or, on a size tie, the higher
     index) can never be selected. *)
  (match prep with
  | None -> ()
  | Some prep ->
      let paths =
        List.filter_map
          (fun g ->
            if g.g_run.Dep_ir.r_total_bits mod 8 = 0 then
              Some
                ( g.g_index,
                  run_semantics g.g_run,
                  g.g_run.Dep_ir.r_total_bits / 8 )
            else None)
          prep.p_groups
      in
      List.iter
        (fun (ia, prov_a, sz_a) ->
          List.iter
            (fun (ib, prov_b, sz_b) ->
              if ia < ib && prov_a = prov_b then
                let span = prep.p_ctrl.ct_span in
                let notes =
                  [ D.note (Printf.sprintf "shared semantics: {%s}" (String.concat ", " prov_a)) ]
                in
                if sz_a <> sz_b then
                  add
                    (D.make ~span ~notes ~code:"OD013" ~severity:D.Warning
                       "paths #%d and #%d provide the same semantics; the \
                        %d-byte layout can never be selected (Eq. 1 always \
                        prefers the %d-byte one)"
                       ia ib (max sz_a sz_b) (min sz_a sz_b))
                else
                  add
                    (D.make ~span ~notes ~code:"OD013" ~severity:D.Warning
                       "paths #%d and #%d provide the same semantics at the \
                        same size (%d bytes); path #%d can never be selected \
                        (ties break toward the lower index)"
                       ia ib sz_a ib))
            paths)
        paths);
  (* OD014: TX formats the host cannot use to send. *)
  List.iter
    (fun (f : Tx_ir.fmt) ->
      let sems =
        List.concat_map
          (fun ((_, h) : string * P4.Typecheck.header_def) ->
            List.filter_map
              (fun (fd : P4.Typecheck.field) -> fd.f_semantic)
              h.h_fields)
          f.Tx_ir.t_extracts
      in
      if not (List.mem "buf_addr" sems) then
        let span =
          Option.map (fun (p : P4.Typecheck.parser_def) -> p.pr_span) inp.in_desc_parser
        in
        add
          (D.make ?span ~code:"OD014" ~severity:D.Warning
             "TX format #%d has no buf_addr field; the device cannot fetch \
              packets"
             f.Tx_ir.t_index))
    tx_formats;
  (* OD015: an intent asking for hardware the NIC does not expose. *)
  match inp.in_intent with
  | None -> ()
  | Some fields ->
      let provided =
        match prep with
        | None -> []
        | Some prep ->
            List.concat_map (fun g -> run_semantics g.g_run) prep.p_groups
            |> List.sort_uniq String.compare
      in
      List.iter
        (fun (s, _w) ->
          if not (registry.Registry_view.known s) then unknown s
          else if
            registry.Registry_view.hardware_only s
            && prep <> None
            && not (List.mem s provided)
          then
            add
              (D.make ~code:"OD015" ~severity:D.Error
                 "intent requests hardware-only semantic %S but no completion \
                  path of this NIC provides it; Eq. 1 has no software fallback"
                 s))
        fields

(* ------------------------------------------------------------------ *)
(* Pass 4: codegen verification. *)

(* Mirror of the accessor shapes the C and eBPF emitters synthesize
   (lib/opendesc/accessor.ml, codegen_c.ml, codegen_ebpf.ml): aligned
   power-of-two fields are direct loads of bytes [off/8 .. off/8+n-1];
   everything else is a byte walk over [off/8 .. (off+bits-1)/8]. Both
   shapes are straight-line with compile-time-constant bounds, so the
   constant-time obligation reduces to the width limit checked here. *)
let check_accessor_bounds ?(path_desc = "") ~size_bytes fields =
  List.concat_map
    (fun af ->
      if af.af_bits > 64 then
        match af.af_semantic with
        | Some s ->
            [
              D.make ~span:af.af_span ~code:"OD017" ~severity:D.Error
                "field %s.%s (@semantic %S) is %d bits wide; accessors are \
                 synthesized as constant-time loads of at most 64 bits, so \
                 this read is not synthesizable (the C and eBPF accessors \
                 would return a constant 0)"
                af.af_header af.af_name s af.af_bits;
            ]
        | None -> [] (* unannotated blobs are padding; nothing reads them *)
      else
        let first = af.af_bit_off / 8 in
        let last =
          if af.af_bit_off mod 8 = 0 && af.af_bits mod 8 = 0 then
            first + (af.af_bits / 8) - 1
          else (af.af_bit_off + af.af_bits - 1) / 8
        in
        if last >= size_bytes then
          [
            D.make ~span:af.af_span ~code:"OD016" ~severity:D.Error
              "accessor for %s.%s reads bytes %d..%d but Size(p)%s is %d \
               bytes; the C and eBPF accessors would read out of bounds"
              af.af_header af.af_name first last
              (if path_desc = "" then "" else " of path " ^ path_desc)
              size_bytes;
          ]
        else [])
    fields

let codegen_pass add (prep : dep_prep) =
  List.iter
    (fun g ->
      let r = g.g_run in
      if r.Dep_ir.r_total_bits mod 8 = 0 then
        check_accessor_bounds ~path_desc:(describe_run r)
          ~size_bytes:(r.Dep_ir.r_total_bits / 8)
          (fields_of_run r)
        |> List.iter add)
    prep.p_groups

(* ------------------------------------------------------------------ *)
(* Engine entry points. *)

let analyze (inp : input) : D.t list =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let prep = prepare add inp in
  (match prep with
  | Some prep ->
      layout_pass add prep;
      feasibility_pass add inp.in_tenv prep;
      certification_pass add inp.in_tenv prep;
      codegen_pass add prep
  | None -> ());
  let tx_formats =
    match inp.in_desc_parser with
    | None -> []
    | Some pd -> (
        match Tx_ir.enumerate inp.in_tenv pd with
        | Ok f -> f
        | Error msg ->
            add (D.make ~span:pd.pr_span ~code:"OD002" ~severity:D.Error "%s" msg);
            [])
  in
  contract_pass add inp prep tx_formats;
  !acc
  |> List.map (D.relocate ~lines:inp.in_line_offset)
  |> List.sort_uniq D.compare

let analyze_program ~registry ?intent ?(line_offset = 0) tenv =
  let desc_parser =
    List.find_opt Tx_ir.is_desc_parser (P4.Typecheck.parsers tenv)
  in
  analyze
    {
      in_tenv = tenv;
      in_deparser = None;
      in_desc_parser = desc_parser;
      in_registry = registry;
      in_intent = intent;
      in_line_offset = line_offset;
    }

let analyze_source ~registry ?intent ?(prelude = "") src =
  let full = prelude ^ src in
  let off = List.length (String.split_on_char '\n' prelude) - 1 in
  match P4.Typecheck.check_string full with
  | tenv -> analyze_program ~registry ?intent ~line_offset:off tenv
  | exception P4.Typecheck.Type_error (msg, sp) ->
      [
        D.relocate ~lines:off
          (D.make ~span:sp ~code:"OD001" ~severity:D.Error "type error: %s" msg);
      ]
  | exception exn -> (
      match P4.Parser.error_to_string full exn with
      | Some s -> [ D.make ~code:"OD001" ~severity:D.Error "%s" s ]
      | None -> raise exn)

let failing ~werror ds =
  List.exists
    (fun (d : D.t) ->
      match d.D.d_severity with
      | D.Error -> true
      | D.Warning -> werror
      | D.Info -> false)
    ds
