type failure_report = {
  fr_index : int;
  fr_seed : int64;
  fr_name : string;
  fr_failure : Oracle.failure;
  fr_shrunk : Spec.t;
  fr_shrunk_source : string;
  fr_shrunk_failure : Oracle.failure;
  fr_shrink_steps : int;
}

type t = {
  cp_seed : int64;
  cp_count : int;
  cp_passed : int;
  cp_failures : failure_report list;
  cp_bounds : Gen.bounds;
  cp_total_paths : int;
  cp_total_configs : int;
  cp_max_bytes : int;
  cp_sw_bound : int;
  cp_obligations : int;
  cp_cost_obligations : int;
  cp_digest : int32;
}

let digest_string crc s =
  let b = Bytes.of_string s in
  Softnic.Crc32.digest ~crc b ~pos:0 ~len:(Bytes.length b)

let run ?(bounds = Gen.default_bounds) ?shrink_budget ?on_spec ~seed ~count () =
  let passed = ref 0 in
  let failures = ref [] in
  let paths = ref 0 and configs = ref 0 and max_bytes = ref 0 and sw = ref 0 in
  let obligations = ref 0 and cost_obligations = ref 0 in
  let crc = ref 0xFFFFFFFFl in
  for index = 0 to count - 1 do
    let sseed = Gen.spec_seed ~seed ~index in
    let name = Printf.sprintf "fz%04d" index in
    let sp = Gen.generate ~bounds ~seed:sseed ~name () in
    let src = Spec.render sp in
    crc := digest_string !crc src;
    (match on_spec with Some f -> f index sp src | None -> ());
    match Oracle.check ~seed:sseed sp with
    | Ok st ->
        incr passed;
        paths := !paths + st.Oracle.st_paths;
        configs := !configs + st.Oracle.st_configs;
        max_bytes := max !max_bytes st.Oracle.st_max_bytes;
        sw := !sw + st.Oracle.st_sw_bound;
        obligations := !obligations + st.Oracle.st_obligations;
        cost_obligations := !cost_obligations + st.Oracle.st_cost_obligations
    | Error fl ->
        let still_fails s = Result.is_error (Oracle.check ~seed:sseed s) in
        let r = Shrink.shrink ?budget:shrink_budget ~still_fails sp in
        let shrunk_failure =
          match Oracle.check ~seed:sseed r.Shrink.sh_spec with
          | Error f -> f
          | Ok _ -> fl (* budget race: keep the original report *)
        in
        failures :=
          {
            fr_index = index;
            fr_seed = sseed;
            fr_name = name;
            fr_failure = fl;
            fr_shrunk = r.Shrink.sh_spec;
            fr_shrunk_source = Spec.render r.Shrink.sh_spec;
            fr_shrunk_failure = shrunk_failure;
            fr_shrink_steps = r.Shrink.sh_steps;
          }
          :: !failures
  done;
  {
    cp_seed = seed;
    cp_count = count;
    cp_passed = !passed;
    cp_failures = List.rev !failures;
    cp_bounds = bounds;
    cp_total_paths = !paths;
    cp_total_configs = !configs;
    cp_max_bytes = !max_bytes;
    cp_sw_bound = !sw;
    cp_obligations = !obligations;
    cp_cost_obligations = !cost_obligations;
    cp_digest = !crc;
  }

let esc = Opendesc_analysis.Diagnostic.json_escape

let to_json t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"opendesc-fuzz-1\",\n";
  add "  \"seed\": %Ld,\n" t.cp_seed;
  add "  \"count\": %d,\n" t.cp_count;
  add "  \"passed\": %d,\n" t.cp_passed;
  add "  \"failed\": %d,\n" (List.length t.cp_failures);
  let b = t.cp_bounds in
  add
    "  \"bounds\": { \"max_ctx_fields\": %d, \"max_depth\": %d, \
     \"max_headers\": %d, \"max_fields\": %d, \"max_emits\": %d, \
     \"max_configs\": %d },\n"
    b.Gen.b_max_ctx b.Gen.b_max_depth b.Gen.b_max_headers b.Gen.b_max_fields
    b.Gen.b_max_emits b.Gen.b_max_configs;
  add
    "  \"totals\": { \"paths\": %d, \"configs\": %d, \"max_path_bytes\": %d, \
     \"software_bound\": %d, \"certify_obligations\": %d, \
     \"cost_obligations\": %d },\n"
    t.cp_total_paths t.cp_total_configs t.cp_max_bytes t.cp_sw_bound
    t.cp_obligations t.cp_cost_obligations;
  add "  \"source_digest\": \"0x%08lx\",\n" t.cp_digest;
  add "  \"failures\": [%s\n  ]\n}"
    (String.concat ","
       (List.map
          (fun fr ->
            Printf.sprintf
              "\n    { \"index\": %d, \"seed\": \"0x%016Lx\", \"name\": \
               \"%s\", \"stage\": \"%s\", \"message\": \"%s\", \
               \"shrink_steps\": %d, \"shrunk_stage\": \"%s\", \
               \"shrunk_message\": \"%s\", \"shrunk_source\": \"%s\" }"
              fr.fr_index fr.fr_seed (esc fr.fr_name)
              (esc fr.fr_failure.Oracle.fl_stage)
              (esc fr.fr_failure.Oracle.fl_message)
              fr.fr_shrink_steps
              (esc fr.fr_shrunk_failure.Oracle.fl_stage)
              (esc fr.fr_shrunk_failure.Oracle.fl_message)
              (esc fr.fr_shrunk_source))
          t.cp_failures));
  Buffer.contents buf

let summary t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "fuzz: seed %Ld, %d specs: %d passed, %d failed\n" t.cp_seed t.cp_count
    t.cp_passed
    (List.length t.cp_failures);
  add
    "      %d paths, %d configs, largest completion %d B, %d certify \
     obligation(s), %d cost obligation(s), digest 0x%08lx\n"
    t.cp_total_paths t.cp_total_configs t.cp_max_bytes t.cp_obligations
    t.cp_cost_obligations t.cp_digest;
  List.iter
    (fun fr ->
      add "  FAIL %s (seed 0x%016Lx) at %s: %s\n" fr.fr_name fr.fr_seed
        fr.fr_failure.Oracle.fl_stage fr.fr_failure.Oracle.fl_message;
      add "    shrunk in %d step(s) to (%s: %s):\n" fr.fr_shrink_steps
        fr.fr_shrunk_failure.Oracle.fl_stage
        fr.fr_shrunk_failure.Oracle.fl_message;
      String.split_on_char '\n' fr.fr_shrunk_source
      |> List.iter (fun l -> add "    | %s\n" l))
    t.cp_failures;
  Buffer.contents buf
