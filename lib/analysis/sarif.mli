(** SARIF 2.1.0 export of analysis diagnostics.

    The static-analysis interchange format consumed by code-review UIs
    (GitHub code scanning, VS Code SARIF viewer). One run per export,
    one result per diagnostic, one reporting rule per distinct OD code.
    Output is deterministic — same diagnostics, same bytes — so it can
    be golden-tested and diffed across CI runs. *)

val level_of_severity : Diagnostic.severity -> string
(** SARIF [level]: [Error] → ["error"], [Warning] → ["warning"],
    [Info] → ["note"]. *)

val of_results : tool_name:string -> (string * Diagnostic.t list) list -> string
(** [of_results ~tool_name artifacts] renders one SARIF 2.1.0 log (as a
    pretty-printed JSON document, trailing newline included). Each
    [(uri, diagnostics)] pair contributes results whose location points
    at [uri]; diagnostics without a span get no region. Rules are the
    distinct diagnostic codes, sorted. *)
