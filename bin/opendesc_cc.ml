(* opendesc_cc: the OpenDesc compiler command line.

   Subcommands:
     list                      catalogue of built-in NIC models and semantics
     paths    --nic ...        enumerate a NIC's completion paths
     cfg      --nic ...        Graphviz CFG of the completion deparser
     compile  --nic ... --semantics ... | --intent file.p4
                               run the compiler; optionally emit C/eBPF *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A NIC argument is either a built-in model name or a path to a P4
   description file. *)
let load_nic ~intent name =
  let models = Nic_models.Catalog.all ~intent () in
  match Nic_models.Catalog.find name models with
  | Some m -> Ok m.spec
  | None ->
      if Sys.file_exists name then
        Opendesc.Nic_spec.load ~name:(Filename.remove_extension (Filename.basename name))
          ~kind:Opendesc.Nic_spec.Fixed_function (read_file name)
      else
        Error
          (Printf.sprintf
             "unknown NIC %S (not a built-in model and no such file); try \
              'opendesc_cc list'"
             name)

let intent_of_args ~semantics ~intent_file registry =
  match (semantics, intent_file) with
  | Some sems, None ->
      let fields =
        List.map
          (fun s ->
            match Opendesc.Semantic.width registry s with
            | Some w -> (s, w)
            | None -> (s, 32))
          (String.split_on_char ',' sems)
      in
      Ok (Opendesc.Intent.make fields)
  | None, Some path -> (
      let src = read_file path in
      match Opendesc.Prelude.check_result src with
      | Error e -> Error e
      | Ok tenv -> (
          match Opendesc.Intent.of_program tenv with
          | Error e -> Error e
          | Ok intent -> (
              (* register any custom @cost semantics from the intent *)
              match P4.Typecheck.find_header tenv intent.name with
              | Some h -> (
                  match Opendesc.Intent.register_custom_semantics registry h with
                  | Ok () -> Ok intent
                  | Error e -> Error e)
              | None -> Ok intent)))
  | Some _, Some _ -> Error "pass either --semantics or --intent, not both"
  | None, None -> Error "an intent is required: --semantics rss,vlan or --intent file.p4"

let nic_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "nic" ] ~docv:"NIC" ~doc:"Built-in NIC model name or P4 description file.")

let semantics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "semantics"; "s" ] ~docv:"S1,S2,..."
        ~doc:"Comma-separated requested semantics.")

let intent_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "intent"; "i" ] ~docv:"FILE"
        ~doc:"P4 file declaring the intent header (Figure 5 style).")

let alpha_arg =
  Arg.(
    value
    & opt float Opendesc.Select.default_alpha
    & info [ "alpha" ] ~docv:"CYCLES_PER_BYTE"
        ~doc:"DMA footprint weight of Eq. 1 (default 2.0).")

let fail fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

(* --- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    let registry = Opendesc.Semantic.default () in
    let intent = Nic_models.Catalog.fig1_intent in
    print_endline "Built-in NIC models:";
    List.iter
      (fun (m : Nic_models.Model.t) ->
        Format.printf "  %a@." Opendesc.Nic_spec.pp m.spec)
      (Nic_models.Catalog.all ~intent ());
    print_endline "";
    print_endline "Known semantics (name, width, software cost in cycles):";
    List.iter
      (fun name ->
        match Opendesc.Semantic.find registry name with
        | Some info ->
            Format.printf "  %-18s %3d bits  %-8s %s@." info.name info.width_bits
              (if Float.is_finite info.sw_cost then
                 Printf.sprintf "%.0f" info.sw_cost
               else "hw-only")
              info.descr
        | None -> ())
      (Opendesc.Semantic.names registry);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List built-in NIC models and known semantics.")
    Term.(ret (const run $ const ()))

(* --- paths --------------------------------------------------------- *)

let paths_cmd =
  let run nic =
    let intent = Nic_models.Catalog.fig1_intent in
    match load_nic ~intent nic with
    | Error e -> fail "%s" e
    | Ok spec ->
        Format.printf "%a@." Opendesc.Report.paths spec;
        let pr = spec.pruning in
        Format.printf
          "feasibility: %d syntactic leaves, %d feasible, %d proved \
           infeasible; %d configurations covered by %d deparser runs@."
          pr.pr_syntactic pr.pr_feasible pr.pr_pruned pr.pr_configs pr.pr_runs;
        (match spec.tx_formats with
        | [] -> ()
        | fs ->
            Format.printf "TX descriptor formats:@.";
            List.iter (fun f -> Format.printf "  %a@." Opendesc.Descparser.pp f) fs);
        (match Opendesc.Nic_spec.lint spec with
        | [] -> ()
        | ws ->
            Format.printf "lint warnings:@.";
            List.iter (Format.printf "  - %s@.") ws);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Enumerate the completion paths of a NIC description.")
    Term.(ret (const run $ nic_arg))

(* --- cfg ----------------------------------------------------------- *)

let cfg_cmd =
  let run nic =
    let intent = Nic_models.Catalog.fig1_intent in
    match load_nic ~intent nic with
    | Error e -> fail "%s" e
    | Ok spec ->
        print_string (Opendesc.Cfg.to_dot (Opendesc.Nic_spec.cfg spec));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "cfg"
       ~doc:"Print the completion deparser's control-flow graph as Graphviz dot.")
    Term.(ret (const run $ nic_arg))

(* --- compile ------------------------------------------------------- *)

let compile_cmd =
  let emit_c_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-c" ] ~docv:"FILE" ~doc:"Write the generated C header to FILE.")
  in
  let emit_ebpf_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-ebpf" ] ~docv:"FILE" ~doc:"Write the generated XDP program to FILE.")
  in
  let emit_datapath_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-datapath" ] ~docv:"FILE"
          ~doc:"Write the complete generated C driver datapath to FILE.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Bypass the memoized compile cache and run the full pipeline. The \
             cache is also bypassed (automatically) when --intent registers \
             custom semantics, which the cache key cannot see.")
  in
  let run nic semantics intent_file alpha no_cache emit_c emit_ebpf emit_datapath =
    let registry = Opendesc.Semantic.default () in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        match load_nic ~intent nic with
        | Error e -> fail "%s" e
        | Ok spec -> (
            (* An --intent file may have registered custom semantics into
               [registry]; the cache memoizes default-registry runs only. *)
            let use_cache = (not no_cache) && intent_file = None in
            match
              if use_cache then Opendesc.Cache.run ~alpha ~intent spec
              else Opendesc.Compile.run ~alpha ~registry ~intent spec
            with
            | Error e -> fail "%s" e
            | Ok compiled ->
                print_endline (Opendesc.Report.to_string compiled);
                print_endline
                  (if use_cache then Opendesc.Cache.stats_line ()
                   else "compile cache: bypassed");
                let write path contents =
                  let oc = open_out path in
                  output_string oc contents;
                  close_out oc;
                  Printf.printf "wrote %s\n" path
                in
                Option.iter
                  (fun p -> write p (Opendesc.Compile.c_source compiled))
                  emit_c;
                Option.iter
                  (fun p -> write p (Opendesc.Compile.ebpf_source compiled))
                  emit_ebpf;
                Option.iter
                  (fun p -> write p (Opendesc.Compile.datapath_source compiled))
                  emit_datapath;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Select the fittest completion path for an intent and synthesize host \
          accessors.")
    Term.(
      ret
        (const run $ nic_arg $ semantics_arg $ intent_arg $ alpha_arg
       $ no_cache_arg $ emit_c_arg $ emit_ebpf_arg $ emit_datapath_arg))

(* --- placement ------------------------------------------------------ *)

let placement_cmd =
  let pcie_arg =
    Arg.(
      value
      & opt float Opendesc.Placement.default_point.pcie_gbps
      & info [ "pcie" ] ~docv:"GBPS" ~doc:"Usable PCIe bandwidth toward the host.")
  in
  let size_arg =
    Arg.(
      value
      & opt int Opendesc.Placement.default_point.pkt_bytes
      & info [ "pkt-size" ] ~docv:"BYTES" ~doc:"Average packet size.")
  in
  let run nic semantics intent_file pcie_gbps pkt_bytes =
    let registry = Opendesc.Semantic.default () in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        match load_nic ~intent nic with
        | Error e -> fail "%s" e
        | Ok spec -> (
            let point =
              { Opendesc.Placement.default_point with pcie_gbps; pkt_bytes }
            in
            match Opendesc.Placement.advise ~point registry intent spec with
            | Error e -> fail "%s" (Opendesc.Select.error_to_string e)
            | Ok verdicts ->
                Printf.printf "%-6s %6s %10s %10s %12s %12s %6s\n" "path" "cmpt"
                  "cpu c/pkt" "dma B/pkt" "cpu Mpps" "pcie Mpps" "bound";
                List.iter
                  (fun (v : Opendesc.Placement.verdict) ->
                    Printf.printf "#%-5d %5dB %10.1f %10.0f %12.1f %12.1f %6s\n"
                      v.v_path.p_index
                      (Opendesc.Path.size v.v_path)
                      v.v_cpu_cycles v.v_dma_bytes (v.v_cpu_pps /. 1e6)
                      (v.v_pcie_pps /. 1e6)
                      (match v.v_bottleneck with `Cpu -> "cpu" | `Pcie -> "pcie"))
                  verdicts;
                (match
                   Opendesc.Placement.crossover_pps ~point registry intent spec
                 with
                | Some (pps, low, high) ->
                    Printf.printf
                      "below %.1f Mpps prefer path #%d (least CPU); above it path #%d\n"
                      (pps /. 1e6) low.p_index high.p_index
                | None -> print_endline "one path dominates at every rate");
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:
         "Rate-aware offload placement: sustainable rate per completion path \
          under CPU and PCIe budgets.")
    Term.(ret (const run $ nic_arg $ semantics_arg $ intent_arg $ pcie_arg $ size_arg))

(* --- diff ------------------------------------------------------------ *)

let diff_cmd =
  let module Ev = Opendesc_analysis.Evolution in
  let against_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "against" ] ~docv:"NIC" ~doc:"The newer revision to compare against.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "werror" ]
          ~doc:"Exit non-zero when the upgrade is classified as breaking.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable JSON report (schema opendesc-diff-1).")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Demand a fresh translation-validation certificate for \
             recompile-class changes: the newer revision is recompiled and \
             certified, and the report says whether the stored certificate \
             covers its contract hash.")
  in
  let run nic against werror json certify =
    let intent = Nic_models.Catalog.fig1_intent in
    match (load_nic ~intent nic, load_nic ~intent against) with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok old_spec, Ok new_spec ->
        (* Per-revision worst-case decode bounds (Costbound): lets the
           report flag a Transparent-but-slower bump. Omitted when a
           revision does not compile against the intent — the entries
           themselves already explain why. *)
        let bound_of spec =
          match Opendesc.Compile.run ~intent spec with
          | Ok compiled ->
              Some
                (Opendesc_analysis.Costbound.plan_bound
                   (Opendesc.Compile.to_plan compiled))
          | Error _ -> None
        in
        let cost =
          match (bound_of old_spec, bound_of new_spec) with
          | Some o, Some n -> Some (o, n)
          | _ -> None
        in
        let report, cert_result =
          if certify then
            Opendesc.Nic_diff.check_certified ?cost ~intent old_spec new_spec
          else (Opendesc.Nic_diff.check ?cost old_spec new_spec, None)
        in
        let regression =
          match cost with Some (o, n) -> n > o +. 1e-9 | None -> false
        in
        if json then print_endline (Ev.report_to_json report)
        else begin
          Format.printf "%a" Ev.pp report;
          if regression then
            match cost with
            | Some (o, n) ->
                Format.printf
                  "OD026: cost regression: worst-case decode cost rose from \
                   %.1f to %.1f cycles/pkt (%.2fx)@."
                  o n
                  (n /. if o > 0.0 then o else 1.0)
            | None -> ()
        end;
        (match cert_result with
        | Some (Error (Opendesc.Cache.Cert_compile_error e)) ->
            prerr_endline
              ("opendesc_cc: re-certification failed to compile: " ^ e);
            exit 1
        | Some (Error (Opendesc.Cache.Cert_failed ds)) ->
            prerr_endline "opendesc_cc: re-certification rejected the plan:";
            List.iter
              (fun d ->
                prerr_endline
                  ("  " ^ Opendesc_analysis.Diagnostic.to_string d))
              ds;
            exit 1
        | Some (Ok _) | None -> ());
        if werror && Ev.breaking report then begin
          prerr_endline "opendesc_cc: breaking interface change (--werror)";
          exit 1
        end
        else if werror && regression then begin
          prerr_endline "opendesc_cc: decode cost regression, OD026 (--werror)";
          exit 1
        end
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Evolution check between two NIC description revisions: every \
          change a firmware upgrade makes, classified transparent / \
          recompile / breaking, with a concrete configuration witness for \
          each breaking entry.")
    Term.(
      ret
        (const run $ nic_arg $ against_arg $ werror_arg $ json_arg
       $ certify_arg))

(* --- validate -------------------------------------------------------- *)

let validate_cmd =
  let probes_arg =
    Arg.(value & opt int 64 & info [ "probes" ] ~docv:"N" ~doc:"Probe packets.")
  in
  let run nic semantics intent_file probes =
    let registry = Opendesc.Semantic.default () in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let models = Nic_models.Catalog.all ~intent () in
        match Nic_models.Catalog.find nic models with
        | None ->
            fail
              "validation drives the simulated device, so NIC must be a \
               built-in model; try 'opendesc_cc list'"
        | Some model -> (
            match Opendesc.Compile.run ~registry ~intent model.spec with
            | Error e -> fail "%s" e
            | Ok compiled -> (
                match
                  Driver.Device.create ~config:compiled.config model
                with
                | Error e -> fail "%s" e
                | Ok device ->
                    let report =
                      Driver.Validate.run ~probes ~device ~compiled ()
                    in
                    Format.printf "%a@." Driver.Validate.pp report;
                    if Driver.Validate.conforms report then `Ok ()
                    else fail "device does not conform to its description")))
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Probe a simulated device and verify its completions against the \
          software reference (contract conformance).")
    Term.(ret (const run $ nic_arg $ semantics_arg $ intent_arg $ probes_arg))

(* --- parallel ------------------------------------------------------- *)

let parallel_cmd =
  let domains_arg =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains (one per queue group).")
  in
  let queues_arg =
    Arg.(
      value & opt int 4
      & info [ "queues" ] ~docv:"N" ~doc:"Queue count of the multi-queue device.")
  in
  let pkts_arg =
    Arg.(
      value & opt int 16384
      & info [ "pkts" ] ~docv:"N" ~doc:"Packets to inject.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Harvest burst capacity per queue.")
  in
  let hot_arg =
    Arg.(
      value & flag
      & info [ "hot" ]
          ~doc:
            "Hot-path mode: pregenerate the workload and disable cost-model \
             accounting, so the run measures the allocation-free byte path \
             (wall clock, GC, idle counters) rather than modelled cycles.")
  in
  let run nic semantics intent_file alpha domains queues pkts batch hot =
    let registry = Opendesc.Semantic.default () in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let models = Nic_models.Catalog.all ~intent () in
        match Nic_models.Catalog.find nic models with
        | None ->
            fail
              "the parallel runtime drives the simulated device, so NIC must \
               be a built-in model; try 'opendesc_cc list'"
        | Some model -> (
            match Opendesc.Compile.run ~alpha ~registry ~intent model.spec with
            | Error e -> fail "%s" e
            | Ok compiled -> (
                let mq =
                  Driver.Mq.create ~queue_depth:1024
                    ~configs:(Array.make queues compiled.config)
                    (fun () ->
                      Option.get
                        (Nic_models.Catalog.find nic
                           (Nic_models.Catalog.all ~intent ())))
                in
                match mq with
                | Error e -> fail "%s" e
                | Ok mq ->
                    let r =
                      Driver.Parallel.run ~domains ~batch ~account:(not hot)
                        ~pregen:hot ~mq
                        ~stack:(fun _ ->
                          Driver.Hoststacks.opendesc_batched ~compiled)
                        ~pkts
                        ~workload:
                          (Packet.Workload.make ~seed:61L
                             Packet.Workload.Min_size)
                        ()
                    in
                    Format.printf "%a@." Driver.Stats.pp_table
                      (Array.to_list r.domain_stats @ [ r.stats ]);
                    Array.iter
                      (fun s ->
                        Format.printf "%s %a@." s.Driver.Stats.name
                          Driver.Stats.pp_idle s)
                      r.domain_stats;
                    Printf.printf
                      "per-queue: %s\nwall: %.3f s (%.2f Mpps)  eff wall: \
                       %.3f s (%.2f Mpps; producer busy %.3f s, worker busy \
                       max %.3f s)\nminor words/pkt: %.1f  stranded: %d  \
                       device drops: %d\n"
                      (String.concat " "
                         (Array.to_list (Array.map string_of_int r.per_queue)))
                      r.wall_s
                      (float_of_int r.pkts /. r.wall_s /. 1e6)
                      r.eff_wall_s
                      (float_of_int r.pkts /. r.eff_wall_s /. 1e6)
                      r.producer_busy_s
                      (Array.fold_left Float.max 0.0 r.busy_s)
                      r.minor_words_per_pkt r.stranded r.drops;
                    if r.stranded <> 0 then
                      fail "%d packets stranded in handoff rings" r.stranded
                    else `Ok ())))
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:
         "Run the domain-parallel multi-queue datapath: worker domains own \
          queue groups, fed over SPSC handoff rings; prints per-domain stat \
          shards and the merged view.")
    Term.(
      ret
        (const run $ nic_arg $ semantics_arg $ intent_arg $ alpha_arg
       $ domains_arg $ queues_arg $ pkts_arg $ batch_arg $ hot_arg))

(* --- chaos ---------------------------------------------------------- *)

let chaos_cmd =
  let module F = Driver.Fault in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Fault-plan seed: the whole run is replayable from this one integer.")
  in
  let queues_arg =
    Arg.(
      value & opt int 2
      & info [ "queues" ] ~docv:"N" ~doc:"Queue count of the multi-queue device.")
  in
  let domains_arg =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains. The summary is identical for any value: faults \
             are a per-queue function of the seed.")
  in
  let pkts_arg =
    Arg.(value & opt int 4096 & info [ "pkts" ] ~docv:"N" ~doc:"Packets to inject.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Harvest burst capacity per queue.")
  in
  let tx_arg =
    Arg.(
      value & opt int 256
      & info [ "tx" ] ~docv:"N"
          ~doc:
            "TX descriptors per queue for the doorbell-loss phase (0 skips \
             it).")
  in
  let intensity_arg =
    Arg.(
      value & opt float 1.0
      & info [ "intensity" ] ~docv:"K"
          ~doc:"Scale every default fault rate by K (clamped to 1).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable summary (schema opendesc-chaos-1); only \
             deterministic fields, so pinned-seed output is bit-reproducible.")
  in
  let rate name doc =
    Arg.(value & opt (some float) None & info [ name ] ~docv:"P" ~doc)
  in
  let flip_arg = rate "flip" "Random bit-flip rate (overrides the default plan)."
  and field_arg = rate "field-corrupt" "Targeted @semantic field corruption rate."
  and torn_arg = rate "torn" "Torn/partial completion write rate."
  and dup_arg = rate "dup" "Duplicated completion rate."
  and reorder_arg = rate "reorder" "Reordered completion rate."
  and stale_arg = rate "stale" "Spurious ring-wraparound (stale slot) rate."
  and stuck_arg = rate "stuck" "Stuck-queue rate."
  and dbl_arg = rate "doorbell-loss" "Lost TX doorbell rate (per posted burst)." in
  let kicks_arg =
    Arg.(
      value & opt int 2
      & info [ "stuck-kicks" ] ~docv:"N"
          ~doc:"Doorbell re-rings needed to unstick a stuck queue.")
  in
  let burst_len_arg =
    Arg.(
      value & opt int 0
      & info [ "burst-len" ] ~docv:"N"
          ~doc:"Faults fire only on the first N injections of every window.")
  in
  let burst_period_arg =
    Arg.(
      value & opt int 0
      & info [ "burst-period" ] ~docv:"N" ~doc:"Burst schedule window length.")
  in
  let plan_term =
    let mk seed intensity flip field torn dup reorder stale stuck dbl kicks blen
        bper =
      let p = F.scale intensity (F.default_plan (Int64.of_int seed)) in
      let ov v d = Option.value v ~default:d in
      {
        p with
        F.flip_rate = ov flip p.F.flip_rate;
        semantic_rate = ov field p.F.semantic_rate;
        torn_rate = ov torn p.F.torn_rate;
        duplicate_rate = ov dup p.F.duplicate_rate;
        reorder_rate = ov reorder p.F.reorder_rate;
        stale_rate = ov stale p.F.stale_rate;
        stuck_rate = ov stuck p.F.stuck_rate;
        doorbell_loss_rate = ov dbl p.F.doorbell_loss_rate;
        stuck_kicks = kicks;
        burst_len = blen;
        burst_period = bper;
      }
    in
    Term.(
      const mk $ seed_arg $ intensity_arg $ flip_arg $ field_arg $ torn_arg
      $ dup_arg $ reorder_arg $ stale_arg $ stuck_arg $ dbl_arg $ kicks_arg
      $ burst_len_arg $ burst_period_arg)
  in
  let digest_of_pkts bs =
    List.fold_left
      (fun crc b -> Softnic.Crc32.digest ~crc b ~pos:0 ~len:(Bytes.length b))
      0xFFFFFFFFl bs
  in
  let run nic semantics intent_file alpha plan queues domains pkts batch tx json
      =
    let registry = Opendesc.Semantic.default () in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let models = Nic_models.Catalog.all ~intent () in
        match Nic_models.Catalog.find nic models with
        | None ->
            fail
              "chaos drives the simulated device, so NIC must be a built-in \
               model; try 'opendesc_cc list'"
        | Some model -> (
            match Opendesc.Compile.run ~alpha ~registry ~intent model.spec with
            | Error e -> fail "%s" e
            | Ok compiled -> (
                let mq =
                  Driver.Mq.create ~queue_depth:1024
                    ~configs:(Array.make queues compiled.config)
                    (fun () ->
                      Option.get
                        (Nic_models.Catalog.find nic
                           (Nic_models.Catalog.all ~intent ())))
                in
                match mq with
                | Error e -> fail "%s" e
                | Ok mq ->
                    let r =
                      Driver.Parallel.run ~domains ~batch ~collect:true ~plan
                        ~mq
                        ~stack:(fun _ ->
                          Driver.Hoststacks.opendesc_batched ~compiled)
                        ~pkts
                        ~workload:
                          (Packet.Workload.make ~seed:plan.F.seed
                             Packet.Workload.Imix)
                        ()
                    in
                    let per_queue_faults = Option.get r.faults in
                    let totals =
                      F.counters_sum (Array.to_list per_queue_faults)
                    in
                    let qdigests =
                      Array.map digest_of_pkts (Option.get r.delivered)
                    in
                    let combined =
                      Array.fold_left
                        (fun crc d ->
                          let b = Bytes.create 4 in
                          Bytes.set_int32_le b 0 d;
                          Softnic.Crc32.digest ~crc b ~pos:0 ~len:4)
                        0xFFFFFFFFl qdigests
                    in
                    (* TX phase: sequential per queue, exercising lost
                       doorbells and the bounded kick-retry recovery. *)
                    let tx_counters =
                      Array.init queues (fun q ->
                          let dev = Driver.Mq.queue mq q in
                          let fq = F.wrap ~qid:q plan dev in
                          (match Driver.Device.tx_format dev with
                          | None -> ()
                          | Some fmt ->
                              let addr =
                                Opendesc.Descparser.field_for fmt "buf_addr"
                              in
                              let body =
                                Packet.Builder.raw ~len:64 ~fill:'t'
                              in
                              let remaining = ref tx in
                              while !remaining > 0 do
                                let n = min batch !remaining in
                                let descs =
                                  List.init n (fun i ->
                                      let d =
                                        Bytes.make
                                          (Opendesc.Descparser.size fmt)
                                          '\x00'
                                      in
                                      (match addr with
                                      | Some a ->
                                          Opendesc.Accessor.writer
                                            ~bit_off:a.l_bit_off ~bits:a.l_bits
                                            d
                                            (Int64.of_int (tx - !remaining + i))
                                      | None -> ());
                                      d)
                                in
                                let posted = F.tx_post_batch fq descs in
                                ignore
                                  (F.tx_drain fq ~fetch:(fun _ -> Some body));
                                remaining := !remaining - max 1 posted
                              done);
                          F.counters fq)
                    in
                    let txt = F.counters_sum (Array.to_list tx_counters) in
                    let ok =
                      F.reconciles totals && r.stranded = 0
                      && txt.F.tx_sent = txt.F.tx_posted
                    in
                    if json then begin
                      let by_kind =
                        String.concat ", "
                          (List.map
                             (fun k ->
                               Printf.sprintf "\"%s\": %d" (F.kind_name k)
                                 totals.F.by_kind.(F.kind_index k))
                             F.kinds)
                      in
                      let pq =
                        String.concat ",\n    "
                          (List.init queues (fun q ->
                               let c = per_queue_faults.(q) in
                               Printf.sprintf
                                 "{\"queue\": %d, \"delivered\": %d, \
                                  \"quarantined\": %d, \"digest\": \
                                  \"0x%08lx\"}"
                                 q c.F.delivered c.F.quarantined qdigests.(q)))
                      in
                      Printf.printf
                        "{\n\
                        \  \"schema\": \"opendesc-chaos-1\",\n\
                        \  \"nic\": \"%s\",\n\
                        \  \"seed\": %Ld,\n\
                        \  \"pkts\": %d,\n\
                        \  \"queues\": %d,\n\
                        \  \"plan\": {\"flip\": %g, \"field_corrupt\": %g, \
                         \"torn\": %g, \"duplicate\": %g, \"reorder\": %g, \
                         \"stale_wrap\": %g, \"stuck_queue\": %g, \
                         \"doorbell_loss\": %g, \"stuck_kicks\": %d, \
                         \"burst_len\": %d, \"burst_period\": %d},\n\
                        \  \"rx\": {\"injected\": %d, \"by_kind\": {%s}, \
                         \"contract_violating\": %d, \"detected\": %d, \
                         \"quarantined\": %d, \"quarantine_drops\": %d, \
                         \"delivered\": %d, \"accepted\": %d, \"duplicates\": \
                         %d, \"retries\": %d, \"drops\": %d},\n\
                        \  \"per_queue\": [\n\
                        \    %s\n\
                        \  ],\n\
                        \  \"tx\": {\"posted\": %d, \"sent\": %d, \
                         \"doorbells_lost\": %d, \"retries\": %d},\n\
                        \  \"digest\": \"0x%08lx\",\n\
                        \  \"reconciled\": %b\n\
                         }\n"
                        model.spec.nic_name plan.F.seed pkts queues
                        plan.F.flip_rate plan.F.semantic_rate plan.F.torn_rate
                        plan.F.duplicate_rate plan.F.reorder_rate
                        plan.F.stale_rate plan.F.stuck_rate
                        plan.F.doorbell_loss_rate plan.F.stuck_kicks
                        plan.F.burst_len plan.F.burst_period totals.F.injected
                        by_kind totals.F.contract_violating totals.F.detected
                        totals.F.quarantined totals.F.quarantine_drops
                        totals.F.delivered totals.F.rx_accepted
                        totals.F.duplicates totals.F.retries r.drops pq
                        txt.F.tx_posted txt.F.tx_sent txt.F.doorbells_lost
                        txt.F.retries combined ok
                    end
                    else begin
                      Format.printf "plan: %a@." F.pp_plan plan;
                      Format.printf "%a@." Driver.Stats.pp_table
                        (Array.to_list r.domain_stats @ [ r.stats ]);
                      Printf.printf
                        "faults: %d injected (%s)\n\
                         detection: %d contract-violating, %d detected, %d \
                         quarantined (%d ring drops)\n\
                         delivered: %d (+%d duplicates, %d accepted)  \
                         retries: %d  drops: %d\n\
                         tx: %d posted, %d sent, %d doorbells lost, %d kicks\n\
                         digest: 0x%08lx  reconciled: %b\n"
                        totals.F.injected
                        (String.concat ", "
                           (List.filter_map
                              (fun k ->
                                let n = totals.F.by_kind.(F.kind_index k) in
                                if n = 0 then None
                                else Some (Printf.sprintf "%s %d" (F.kind_name k) n))
                              F.kinds))
                        totals.F.contract_violating totals.F.detected
                        totals.F.quarantined totals.F.quarantine_drops
                        totals.F.delivered totals.F.duplicates
                        totals.F.rx_accepted totals.F.retries r.drops
                        txt.F.tx_posted txt.F.tx_sent txt.F.doorbells_lost
                        txt.F.retries combined ok
                    end;
                    if not ok then
                      fail
                        "chaos run failed to reconcile (stranded=%d, see \
                         summary)"
                        r.stranded
                    else `Ok ())))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injected datapath: a seeded deterministic plan of \
          descriptor corruption, torn writes, duplicates, reorders, stale \
          wraparounds, stuck queues and lost doorbells, with per-descriptor \
          contract validation and quarantine on the recovery path.")
    Term.(
      ret
        (const run $ nic_arg $ semantics_arg $ intent_arg $ alpha_arg
       $ plan_term $ queues_arg $ domains_arg $ pkts_arg $ batch_arg $ tx_arg
       $ json_arg))

(* --- lint ----------------------------------------------------------- *)

let lint_cmd =
  let module Dg = Opendesc_analysis.Diagnostic in
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NIC|FILE"
          ~doc:
            "Built-in NIC model names or P4 description files (vendor \
             descriptions or intent headers). Default: the whole built-in \
             catalogue.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Exit non-zero on warnings, not only on errors.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON report (schema opendesc-lint-1).")
  in
  let sarif_arg =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"SARIF 2.1.0 report (for code-review tooling).")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Also translation-validate the compiled artifacts (OD021–OD023); \
             targets that do not compile are linted as usual and skipped \
             here.")
  in
  let run targets semantics intent_file werror json sarif certify =
    let registry = Opendesc.Semantic.default () in
    let intent =
      match (semantics, intent_file) with
      | None, None -> Ok None
      | _ -> Result.map Option.some (intent_of_args ~semantics ~intent_file registry)
    in
    match intent with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let cat_intent =
          match intent with Some i -> i | None -> Nic_models.Catalog.fig1_intent
        in
        let models = Nic_models.Catalog.all ~intent:cat_intent () in
        (* --certify: append translation-validation findings to a target's
           lints. Best-effort by design — a target that doesn't even load
           or compile already reports its source-level lints above. *)
        let certify_diags name spec_opt =
          if not certify then []
          else
            let spec =
              match spec_opt with
              | Some s -> Some s
              | None ->
                  if Sys.file_exists name then
                    Result.to_option
                      (Opendesc.Nic_spec.load
                         ~name:
                           (Filename.remove_extension (Filename.basename name))
                         ~kind:Opendesc.Nic_spec.Fixed_function
                         (read_file name))
                  else None
            in
            match spec with
            | None -> []
            | Some spec -> (
                match
                  Opendesc.Compile.run ~registry ~intent:cat_intent spec
                with
                | Error _ -> []
                | Ok compiled -> (
                    match Opendesc.Compile.certify compiled with
                    | Ok _ -> []
                    | Error ds -> ds))
        in
        let analyze_target name =
          match Nic_models.Catalog.find name models with
          | Some m ->
              Ok
                ( m.Nic_models.Model.spec.nic_name,
                  Opendesc.Nic_spec.analyze ~registry ?intent m.spec
                  @ certify_diags name (Some m.spec) )
          | None ->
              if Sys.file_exists name then
                Ok
                  ( Filename.remove_extension (Filename.basename name),
                    Opendesc.Nic_spec.analyze_source ~registry ?intent
                      (read_file name)
                    @ certify_diags name None )
              else
                Error
                  (Printf.sprintf
                     "unknown NIC %S (not a built-in model and no such file); \
                      try 'opendesc_cc list'"
                     name)
        in
        let targets =
          match targets with
          | [] ->
              List.map
                (fun (m : Nic_models.Model.t) -> m.spec.nic_name)
                models
          | ts -> ts
        in
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | t :: rest -> (
              match analyze_target t with
              | Error e -> Error e
              | Ok r -> collect (r :: acc) rest)
        in
        match collect [] targets with
        | Error e -> fail "%s" e
        | Ok results ->
            let count sev =
              List.fold_left
                (fun n (_, ds) ->
                  n
                  + List.length
                      (List.filter (fun (d : Dg.t) -> d.d_severity = sev) ds))
                0 results
            in
            let errors = count Dg.Error
            and warnings = count Dg.Warning
            and infos = count Dg.Info in
            if sarif then
              print_string
                (Opendesc_analysis.Sarif.of_results
                   ~tool_name:"opendesc_cc lint" results)
            else if json then begin
              let target_json (name, ds) =
                Printf.sprintf "    {\"name\": \"%s\", \"diagnostics\": [%s]}"
                  (Dg.json_escape name)
                  (match ds with
                  | [] -> ""
                  | ds ->
                      "\n      "
                      ^ String.concat ",\n      " (List.map Dg.to_json ds)
                      ^ "\n    ")
              in
              Printf.printf
                "{\n\
                \  \"schema\": \"opendesc-lint-1\",\n\
                \  \"targets\": [\n\
                 %s\n\
                \  ],\n\
                \  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": \
                 %d}\n\
                 }\n"
                (String.concat ",\n" (List.map target_json results))
                errors warnings infos
            end
            else begin
              List.iter
                (fun (name, ds) ->
                  if ds <> [] then begin
                    Printf.printf "%s:\n" name;
                    List.iter
                      (fun d -> Printf.printf "  %s\n" (Dg.to_string d))
                      ds
                  end)
                results;
              Printf.printf
                "checked %d target(s): %d error(s), %d warning(s), %d info(s)\n"
                (List.length results) errors warnings infos
            end;
            if
              Opendesc_analysis.Engine.failing ~werror
                (List.concat_map snd results)
            then exit 1
            else `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the descriptor-contract verifier: layout safety, path \
          feasibility, contract consistency against the semantic registry, \
          and codegen verification, with structured located diagnostics.")
    Term.(
      ret
        (const run $ targets_arg $ semantics_arg $ intent_arg $ werror_arg
       $ json_arg $ sarif_arg $ certify_arg))

(* --- certify ------------------------------------------------------- *)

let certify_cmd =
  let module Dg = Opendesc_analysis.Diagnostic in
  let module Cert = Opendesc_analysis.Certify in
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NIC|FILE"
          ~doc:
            "Built-in NIC model names or P4 description files. Default: the \
             whole built-in catalogue.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Exit non-zero on warnings, not only on errors.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable JSON report (schema opendesc-certify-1).")
  in
  let sarif_arg =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"SARIF 2.1.0 report (for code-review tooling).")
  in
  let emit_arg =
    Arg.(
      value & opt (some string) None
      & info [ "emit-certificate" ] ~docv:"FILE"
          ~doc:
            "Write the certificate (format opendesc-cert-1) to $(docv); \
             requires exactly one target.")
  in
  let check_arg =
    Arg.(
      value & opt (some string) None
      & info [ "check-certificate" ] ~docv:"FILE"
          ~doc:
            "Validate a stored certificate against the target's current \
             contract hash (OD024 on mismatch); requires exactly one target.")
  in
  let inject_arg =
    let kinds = List.map Cert.mutation_name Cert.mutations in
    Arg.(
      value & opt (some string) None
      & info [ "inject" ] ~docv:"MUTATION"
          ~doc:
            (Printf.sprintf
               "Inject a miscompilation into the plan before validation and \
                require the validator to reject it (one of %s)."
               (String.concat ", " kinds)))
  in
  (* One certification attempt. [spec_of] so catalog targets go through
     the cache (certificates are memoized and recorded for Evolution)
     while file targets and custom-registry intents go to the compiler
     directly. *)
  let certify_target ~registry ~alpha ~intent ~via_cache spec =
    if via_cache then
      match Opendesc.Cache.certify ~alpha ~intent spec with
      | Ok cert -> Ok cert
      | Error (Opendesc.Cache.Cert_compile_error e) -> Error (`Compile e)
      | Error (Opendesc.Cache.Cert_failed ds) -> Error (`Failed ds)
    else
      match Opendesc.Compile.run ~alpha ~registry ~intent spec with
      | Error e -> Error (`Compile e)
      | Ok compiled -> (
          match Opendesc.Compile.certify compiled with
          | Ok cert -> Ok cert
          | Error ds -> Error (`Failed ds))
  in
  let run targets semantics intent_file alpha werror json sarif emit check
      inject =
    let registry = Opendesc.Semantic.default () in
    let custom_intent = intent_file <> None || semantics <> None in
    let intent =
      if custom_intent then intent_of_args ~semantics ~intent_file registry
      else Ok Nic_models.Catalog.fig1_intent
    in
    match intent with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let models = Nic_models.Catalog.all ~intent () in
        let targets =
          match targets with
          | [] ->
              List.map (fun (m : Nic_models.Model.t) -> m.spec.nic_name) models
          | ts -> ts
        in
        let mutation =
          match inject with
          | None -> Ok None
          | Some k -> (
              match Cert.mutation_of_string k with
              | Some m -> Ok (Some m)
              | None ->
                  Error
                    (Printf.sprintf "unknown mutation %S (one of %s)" k
                       (String.concat ", "
                          (List.map Cert.mutation_name Cert.mutations))))
        in
        match mutation with
        | Error e -> fail "%s" e
        | Ok mutation -> (
            let spec_of name =
              match Nic_models.Catalog.find name models with
              | Some m -> Ok (m.Nic_models.Model.spec, not custom_intent)
              | None ->
                  Result.map
                    (fun s -> (s, false))
                    (load_nic ~intent name)
            in
            let certify_one name =
              match spec_of name with
              | Error e -> Error e
              | Ok (spec, via_cache) -> (
                  match mutation with
                  | None ->
                      Ok
                        ( spec,
                          certify_target ~registry ~alpha ~intent ~via_cache
                            spec )
                  | Some m -> (
                      (* Miscompilation drill: corrupt the plan the way a
                         codegen bug would and demand rejection. *)
                      match Opendesc.Compile.run ~alpha ~registry ~intent spec with
                      | Error e -> Ok (spec, Error (`Compile e))
                      | Ok compiled ->
                          let plan =
                            Cert.inject m (Opendesc.Compile.to_plan compiled)
                          in
                          Ok
                            ( spec,
                              match
                                Cert.check
                                  (Opendesc.Compile.contract compiled)
                                  plan
                              with
                              | Ok cert -> Ok cert
                              | Error ds -> Error (`Failed ds) )))
            in
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | t :: rest -> (
                  match certify_one t with
                  | Error e -> Error e
                  | Ok (spec, r) -> collect ((t, spec, r) :: acc) rest)
            in
            match collect [] targets with
            | Error e -> fail "%s" e
            | Ok results -> (
                match (mutation, emit, check) with
                | Some m, _, _ ->
                    (* Every injected plan must be rejected, with one of the
                       mutation's expected codes among the diagnostics. *)
                    let expected = Cert.expected_codes m in
                    let bad =
                      List.filter_map
                        (fun (name, _, r) ->
                          match r with
                          | Ok _ ->
                              Some
                                (Printf.sprintf
                                   "%s: injected %s was NOT caught" name
                                   (Cert.mutation_name m))
                          | Error (`Compile e) ->
                              Some (Printf.sprintf "%s: compile error: %s" name e)
                          | Error (`Failed ds) ->
                              if
                                List.exists
                                  (fun (d : Dg.t) ->
                                    List.mem d.d_code expected)
                                  ds
                              then None
                              else
                                Some
                                  (Printf.sprintf
                                     "%s: rejected, but none of [%s] fired \
                                      (got %s)"
                                     name
                                     (String.concat "; " expected)
                                     (String.concat ", "
                                        (List.sort_uniq Stdlib.compare
                                           (List.map
                                              (fun (d : Dg.t) -> d.d_code)
                                              ds)))))
                        results
                    in
                    if bad = [] then begin
                      List.iter
                        (fun (name, _, r) ->
                          let codes =
                            match r with
                            | Error (`Failed ds) ->
                                List.sort_uniq Stdlib.compare
                                  (List.map (fun (d : Dg.t) -> d.d_code) ds)
                            | _ -> []
                          in
                          Printf.printf "%s: injected %s rejected (%s)\n" name
                            (Cert.mutation_name m)
                            (String.concat ", " codes))
                        results;
                      `Ok ()
                    end
                    else fail "%s" (String.concat "\n" bad)
                | None, Some path, _ -> (
                    match results with
                    | [ (_, _, Ok cert) ] ->
                        let oc = open_out path in
                        Fun.protect
                          ~finally:(fun () -> close_out oc)
                          (fun () -> output_string oc (Cert.to_text cert));
                        Printf.printf
                          "wrote certificate for %s (contract %s) to %s\n"
                          cert.c_nic
                          (String.sub cert.c_contract 0 12)
                          path;
                        `Ok ()
                    | [ (name, _, Error (`Compile e)) ] ->
                        fail "%s: %s" name e
                    | [ (name, _, Error (`Failed ds)) ] ->
                        List.iter
                          (fun d -> Printf.printf "%s\n" (Dg.to_string d))
                          ds;
                        fail "%s: certification failed; no certificate to emit"
                          name
                    | _ ->
                        fail "--emit-certificate requires exactly one target")
                | None, None, Some path -> (
                    match results with
                    | [ (name, spec, _) ] -> (
                        match Cert.of_text (read_file path) with
                        | Error e -> fail "%s: %s" path e
                        | Ok cert -> (
                            let current = Opendesc.Compile.contract_hash spec in
                            match Cert.validate cert ~contract_hash:current with
                            | [] ->
                                Printf.printf
                                  "%s: certificate fresh (contract %s, path \
                                   #%d, %d obligation(s))\n"
                                  name
                                  (String.sub cert.c_contract 0 12)
                                  cert.c_path_index cert.c_obligations;
                                `Ok ()
                            | ds ->
                                List.iter
                                  (fun d ->
                                    Printf.printf "%s\n" (Dg.to_string d))
                                  ds;
                                exit 1))
                    | _ ->
                        fail "--check-certificate requires exactly one target")
                | None, None, None ->
                    let diags_of = function
                      | Ok _ | Error (`Compile _) -> []
                      | Error (`Failed ds) -> ds
                    in
                    let all_diags =
                      List.concat_map (fun (_, _, r) -> diags_of r) results
                    in
                    if sarif then
                      print_string
                        (Opendesc_analysis.Sarif.of_results
                           ~tool_name:"opendesc_cc certify"
                           (List.map
                              (fun (name, _, r) -> (name, diags_of r))
                              results))
                    else if json then begin
                      let target_json (name, _, r) =
                        match r with
                        | Ok (cert : Cert.certificate) ->
                            Printf.sprintf
                              "    {\"name\": \"%s\", \"status\": \
                               \"certified\", \"certificate\": %s}"
                              (Dg.json_escape name)
                              (Cert.certificate_json cert)
                        | Error (`Compile e) ->
                            Printf.sprintf
                              "    {\"name\": \"%s\", \"status\": \
                               \"compile_error\", \"error\": \"%s\"}"
                              (Dg.json_escape name) (Dg.json_escape e)
                        | Error (`Failed ds) ->
                            Printf.sprintf
                              "    {\"name\": \"%s\", \"status\": \"failed\", \
                               \"diagnostics\": [%s]}"
                              (Dg.json_escape name)
                              (String.concat ", " (List.map Dg.to_json ds))
                      in
                      let certified =
                        List.length
                          (List.filter
                             (fun (_, _, r) -> Result.is_ok r)
                             results)
                      in
                      Printf.printf
                        "{\n\
                        \  \"schema\": \"opendesc-certify-1\",\n\
                        \  \"targets\": [\n\
                         %s\n\
                        \  ],\n\
                        \  \"summary\": {\"certified\": %d, \"failed\": %d}\n\
                         }\n"
                        (String.concat ",\n" (List.map target_json results))
                        certified
                        (List.length results - certified)
                    end
                    else
                      List.iter
                        (fun (name, _, r) ->
                          match r with
                          | Ok (cert : Cert.certificate) ->
                              Printf.printf
                                "%s: certified path #%d (%dB, %d \
                                 obligation(s), %d read(s), contract %s)\n"
                                name cert.c_path_index cert.c_size_bytes
                                cert.c_obligations
                                (List.length cert.c_reads)
                                (String.sub cert.c_contract 0 12)
                          | Error (`Compile e) ->
                              Printf.printf "%s: compile error: %s\n" name e
                          | Error (`Failed ds) ->
                              Printf.printf "%s: certification FAILED\n" name;
                              List.iter
                                (fun d ->
                                  Printf.printf "  %s\n" (Dg.to_string d))
                                ds)
                        results;
                    let compile_errors =
                      List.exists
                        (fun (_, _, r) ->
                          match r with Error (`Compile _) -> true | _ -> false)
                        results
                    in
                    if
                      Opendesc_analysis.Engine.failing ~werror all_diags
                      || compile_errors
                    then exit 1
                    else `Ok ())))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Translation-validate compiled artifacts: prove each accessor plan \
          and the shim schedule agree byte-for-byte with the deparser \
          contract on every feasible completion path, and mint a certificate \
          keyed by the contract hash."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "For every target the compiler's output — per-path accessor \
              offset/mask/shift chains and the SoftNIC shim schedule chosen \
              by the cost model — is lifted into a small codegen IR and \
              symbolically executed against the deparser on every feasible \
              completion run the programmed configuration selects. \
              Violations are located lints: OD021 (plan/deparser value \
              mismatch), OD022 (uncovered required semantic), OD023 \
              (cross-path accessor confusion), OD024 (stale certificate). \
              See docs/CERTIFICATION.md.";
         ])
    Term.(
      ret
        (const run $ targets_arg $ semantics_arg $ intent_arg $ alpha_arg
       $ werror_arg $ json_arg $ sarif_arg $ emit_arg $ check_arg $ inject_arg))

(* --- cost ---------------------------------------------------------- *)

let cost_cmd =
  let module Dg = Opendesc_analysis.Diagnostic in
  let module Cb = Opendesc_analysis.Costbound in
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NIC|FILE"
          ~doc:
            "Built-in NIC model names or P4 description files. Default: the \
             whole built-in catalogue.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Exit non-zero on warnings, not only on errors.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable JSON report (schema opendesc-cost-1).")
  in
  let sarif_arg =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"SARIF 2.1.0 report (for code-review tooling).")
  in
  let budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "budget" ] ~docv:"CYCLES"
          ~doc:
            "Decode-cost budget in cycles/pkt; overrides any \
             @budget(<cycles>) on the intent header (OD025 when the \
             provable bound exceeds it).")
  in
  let table_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cost-table" ] ~docv:"JSON"
          ~doc:
            "Cost-table file (schema opendesc-cost-table-1); known keys \
             override the built-in mirror of the driver cost model.")
  in
  let inject_arg =
    let kinds = List.map Cb.mutation_name Cb.mutations in
    Arg.(
      value & opt (some string) None
      & info [ "inject" ] ~docv:"MUTATION"
          ~doc:
            (Printf.sprintf
               "Inject a cost regression into the deployment before analysis \
                and require the expected code to fire (one of %s)."
               (String.concat ", " kinds)))
  in
  let run targets semantics intent_file alpha budget table_file werror json
      sarif inject =
    let registry = Opendesc.Semantic.default () in
    let custom_intent = intent_file <> None || semantics <> None in
    let intent =
      if custom_intent then intent_of_args ~semantics ~intent_file registry
      else Ok Nic_models.Catalog.fig1_intent
    in
    let table =
      match table_file with
      | None -> Ok Cb.default_table
      | Some f -> (
          match Cb.table_of_json (read_file f) with
          | Ok t -> Ok t
          | Error e -> Error (Printf.sprintf "%s: %s" f e))
    in
    match (intent, table) with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok intent, Ok table -> (
        let models = Nic_models.Catalog.all ~intent () in
        let targets =
          match targets with
          | [] ->
              List.map (fun (m : Nic_models.Model.t) -> m.spec.nic_name) models
          | ts -> ts
        in
        let mutation =
          match inject with
          | None -> Ok None
          | Some k -> (
              match Cb.mutation_of_string k with
              | Some m -> Ok (Some m)
              | None ->
                  Error
                    (Printf.sprintf "unknown mutation %S (one of %s)" k
                       (String.concat ", "
                          (List.map Cb.mutation_name Cb.mutations))))
        in
        match mutation with
        | Error e -> fail "%s" e
        | Ok mutation -> (
            let spec_of name =
              match Nic_models.Catalog.find name models with
              | Some m -> Ok m.Nic_models.Model.spec
              | None -> load_nic ~intent name
            in
            (* The budget the analysis gates against: the CLI bound wins,
               else the intent's own @budget(<cycles>). *)
            let declared_budget =
              match budget with
              | Some _ -> budget
              | None -> intent.Opendesc.Intent.budget
            in
            let cost_one name =
              match spec_of name with
              | Error e -> Error e
              | Ok spec -> (
                  match Opendesc.Compile.run ~alpha ~registry ~intent spec with
                  | Error e -> Ok (name, Error e)
                  | Ok compiled ->
                      let contract = Opendesc.Compile.contract compiled in
                      let plan = Opendesc.Compile.to_plan compiled in
                      let report =
                        match mutation with
                        | None ->
                            Cb.analyze ~table ?budget:declared_budget contract
                              plan
                        | Some m ->
                            let drill = Cb.inject ~table m plan in
                            let budget =
                              match drill.Cb.dr_budget with
                              | Some _ as b -> b
                              | None -> declared_budget
                            in
                            Cb.analyze ~table ?budget
                              ?baseline:drill.Cb.dr_baseline contract
                              drill.Cb.dr_plan
                      in
                      Ok (name, Ok report))
            in
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | t :: rest -> (
                  match cost_one t with
                  | Error e -> Error e
                  | Ok r -> collect (r :: acc) rest)
            in
            match collect [] targets with
            | Error e -> fail "%s" e
            | Ok results -> (
                match mutation with
                | Some m ->
                    (* Every drilled deployment must raise one of the
                       mutation's expected codes (code presence, not exit
                       status: OD027 is informational by design). *)
                    let expected = Cb.expected_codes m in
                    let bad =
                      List.filter_map
                        (fun (name, r) ->
                          match r with
                          | Error e ->
                              Some (Printf.sprintf "%s: compile error: %s" name e)
                          | Ok (report : Cb.report) ->
                              if
                                List.exists
                                  (fun (d : Dg.t) -> List.mem d.d_code expected)
                                  report.r_diags
                              then None
                              else
                                Some
                                  (Printf.sprintf
                                     "%s: injected %s did NOT raise any of \
                                      [%s] (got %s)"
                                     name (Cb.mutation_name m)
                                     (String.concat "; " expected)
                                     (match report.r_diags with
                                     | [] -> "no findings"
                                     | ds ->
                                         String.concat ", "
                                           (List.sort_uniq Stdlib.compare
                                              (List.map
                                                 (fun (d : Dg.t) -> d.d_code)
                                                 ds)))))
                        results
                    in
                    if bad = [] then begin
                      List.iter
                        (fun (name, r) ->
                          let codes =
                            match r with
                            | Ok (report : Cb.report) ->
                                List.sort_uniq Stdlib.compare
                                  (List.map
                                     (fun (d : Dg.t) -> d.d_code)
                                     report.r_diags)
                            | Error _ -> []
                          in
                          Printf.printf "%s: injected %s flagged (%s)\n" name
                            (Cb.mutation_name m)
                            (String.concat ", " codes))
                        results;
                      `Ok ()
                    end
                    else fail "%s" (String.concat "\n" bad)
                | None ->
                    let diags_of = function
                      | Error _ -> []
                      | Ok (r : Cb.report) -> r.r_diags
                    in
                    let all_diags =
                      List.concat_map (fun (_, r) -> diags_of r) results
                    in
                    if sarif then
                      print_string
                        (Opendesc_analysis.Sarif.of_results
                           ~tool_name:"opendesc_cc cost"
                           (List.map
                              (fun (name, r) -> (name, diags_of r))
                              results))
                    else if json then begin
                      let opt_float key = function
                        | None -> ""
                        | Some v -> Printf.sprintf ", \"%s\": %.1f" key v
                      in
                      let path_json (p : Cb.path_cost) =
                        Printf.sprintf
                          "{\"path\": %d, \"size_bytes\": %d, \"lines\": %d, \
                           \"serves\": %b, \"hw\": [%s], \"shimmed\": [%s], \
                           \"bound\": %.1f}"
                          p.pc_index p.pc_size_bytes p.pc_lines p.pc_serves
                          (String.concat ", "
                             (List.map
                                (fun s -> Printf.sprintf "\"%s\"" (Dg.json_escape s))
                                p.pc_hw))
                          (String.concat ", "
                             (List.map
                                (fun s -> Printf.sprintf "\"%s\"" (Dg.json_escape s))
                                p.pc_shimmed))
                          p.pc_bound
                      in
                      let target_json (name, r) =
                        match r with
                        | Error e ->
                            Printf.sprintf
                              "    {\"name\": \"%s\", \"status\": \
                               \"compile_error\", \"error\": \"%s\"}"
                              (Dg.json_escape name) (Dg.json_escape e)
                        | Ok (report : Cb.report) ->
                            let c = report.r_cost in
                            Printf.sprintf
                              "    {\"name\": \"%s\", \"status\": \"%s\", \
                               \"cost\": {\"path\": %d, \"size_bytes\": %d, \
                               \"lines\": %d, \"distinct_lines\": %d, \
                               \"hw_reads\": %d, \"shim_cycles\": %.1f, \
                               \"bound\": %.1f%s%s}, \"paths\": [%s], \
                               \"diagnostics\": [%s]}"
                              (Dg.json_escape name)
                              (if
                                 Opendesc_analysis.Engine.failing ~werror:false
                                   report.r_diags
                               then "over_budget"
                               else "bounded")
                              c.co_path_index c.co_size_bytes c.co_lines
                              c.co_distinct_lines c.co_hw_reads
                              c.co_shim_cycles c.co_bound
                              (opt_float "budget" c.co_budget)
                              (opt_float "baseline" c.co_baseline)
                              (String.concat ", "
                                 (List.map path_json report.r_paths))
                              (String.concat ", "
                                 (List.map Dg.to_json report.r_diags))
                      in
                      let bounded =
                        List.length
                          (List.filter
                             (fun (_, r) ->
                               match r with
                               | Ok (rep : Cb.report) ->
                                   not
                                     (Opendesc_analysis.Engine.failing
                                        ~werror:false rep.r_diags)
                               | Error _ -> false)
                             results)
                      in
                      Printf.printf
                        "{\n\
                        \  \"schema\": \"opendesc-cost-1\",\n\
                        \  \"targets\": [\n\
                         %s\n\
                        \  ],\n\
                        \  \"summary\": {\"bounded\": %d, \"flagged\": %d}\n\
                         }\n"
                        (String.concat ",\n" (List.map target_json results))
                        bounded
                        (List.length results - bounded)
                    end
                    else
                      List.iter
                        (fun (name, r) ->
                          match r with
                          | Error e ->
                              Printf.printf "%s: compile error: %s\n" name e
                          | Ok (report : Cb.report) ->
                              let c = report.Cb.r_cost in
                              Printf.printf
                                "%s: path #%d bound %.1f cycles/pkt (%dB, %d \
                                 line(s), %d distinct, %d hw read(s), %.1f \
                                 shim cycles)%s\n"
                                name c.Cb.co_path_index c.Cb.co_bound
                                c.Cb.co_size_bytes c.Cb.co_lines
                                c.Cb.co_distinct_lines c.Cb.co_hw_reads
                                c.Cb.co_shim_cycles
                                (match c.Cb.co_budget with
                                | Some b -> Printf.sprintf " budget %.1f" b
                                | None -> "");
                              List.iter
                                (fun (p : Cb.path_cost) ->
                                  Printf.printf
                                    "  path #%d: %.1f cycles/pkt%s hw={%s} \
                                     shims={%s}\n"
                                    p.pc_index p.pc_bound
                                    (if p.pc_serves then "" else " (cannot serve)")
                                    (String.concat "," p.pc_hw)
                                    (String.concat "," p.pc_shimmed))
                                report.Cb.r_paths;
                              List.iter
                                (fun d ->
                                  Printf.printf "  %s\n" (Dg.to_string d))
                                report.Cb.r_diags)
                        results;
                    let compile_errors =
                      List.exists
                        (fun (_, r) -> Result.is_error r)
                        results
                    in
                    if
                      Opendesc_analysis.Engine.failing ~werror all_diags
                      || compile_errors
                    then exit 1
                    else `Ok ())))
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "Static worst-case decode cost certification: a provable cycles/pkt \
          upper bound per feasible completion path and served intent, priced \
          against a serializable mirror of the driver cost model and gated \
          against declared budgets."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "For every target the compiled accessor plans and SoftNIC shim \
              schedule are priced over the feasibility-pruned completion \
              catalogue: cache-line loads from the record footprint, op \
              costs from the cost table, worst case maximized over the runs \
              the programmed configuration selects. Findings: OD025 (bound \
              over budget), OD026 (cost regression vs a baseline), OD027 \
              (another feasible path serves the intent strictly cheaper), \
              OD028 (bitwalk with no static bound). The cost_bound bench \
              cross-validates the bound against the runtime ledger. See \
              docs/COSTMODEL.md.";
         ])
    Term.(
      ret
        (const run $ targets_arg $ semantics_arg $ intent_arg $ alpha_arg
       $ budget_arg $ table_arg $ werror_arg $ json_arg $ sarif_arg
       $ inject_arg))

(* --- fuzz ---------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Campaign seed. Every spec, every random descriptor and every \
                shrink replays bit-for-bit from it.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of specs to generate.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable JSON report (schema opendesc-fuzz-1).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write every generated spec to $(docv)/<name>.p4 (how \
                corpus fixtures are minted).")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int 200
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Oracle evaluations the shrinker may spend per failure.")
  in
  let negative_arg =
    Arg.(
      value & flag
      & info [ "negative" ]
          ~doc:
            "Near-miss mode: mutate each generated spec just past a \
             contract boundary (duplicate emit, undersized slot, unknown \
             or over-wide semantic, budget below the proved cost bound) \
             and assert the specific OD code fires.")
  in
  let run seed count json out shrink_budget negative =
    if negative then begin
      let report =
        Opendesc_fuzz.Negative.run ~seed:(Int64.of_int seed) ~count ()
      in
      if json then print_endline (Opendesc_fuzz.Negative.to_json report)
      else print_string (Opendesc_fuzz.Negative.summary report);
      match Opendesc_fuzz.Negative.failed report with
      | [] -> `Ok ()
      | fs ->
          `Error
            ( false,
              Printf.sprintf
                "%d of %d near-miss mutations did not raise their expected \
                 lint"
                (List.length fs)
                (List.length report.ng_cases) )
    end
    else
    let on_spec =
      Option.map
        (fun dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          fun _ (sp : Opendesc_fuzz.Spec.t) src ->
            let path = Filename.concat dir (sp.sp_name ^ ".p4") in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc src))
        out
    in
    let report =
      Opendesc_fuzz.Campaign.run ?on_spec ~shrink_budget
        ~seed:(Int64.of_int seed) ~count ()
    in
    if json then print_endline (Opendesc_fuzz.Campaign.to_json report)
    else print_string (Opendesc_fuzz.Campaign.summary report);
    if report.cp_failures = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "%d of %d fuzzed specs failed the differential property"
            (List.length report.cp_failures) count )
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential-fuzz the toolchain with generated deparser specs."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generates random-but-valid NIC descriptions from a seeded \
              grammar and pushes each through the full stack: typecheck, \
              lint, symbolic-execution soundness, compile, translation \
              validation of the compiled plan, and a three-way \
              byte-identical decode of random and device-emitted completion \
              records, plus a pretty-print/reparse fixpoint. Failing specs \
              are greedily shrunk to minimal counterexamples. With \
              $(b,--negative), each spec is instead mutated just past a \
              contract boundary and the analyzer must raise the matching \
              lint.";
         ])
    Term.(
      ret
        (const run $ seed_arg $ count_arg $ json_arg $ out_arg
       $ shrink_budget_arg $ negative_arg))

(* --- upgrade ------------------------------------------------------- *)

let upgrade_cmd =
  let module U = Driver.Upgrade in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NIC"
          ~doc:"The running revision: built-in model name or P4 file.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW"
          ~doc:"The candidate revision: built-in model name or P4 file.")
  in
  let queues_arg =
    Arg.(
      value & opt int 4
      & info [ "queues" ] ~docv:"N" ~doc:"Queue count of the multi-queue device.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains. 1 (the default) runs the deterministic \
             interleaved engine whose output is bit-reproducible from the \
             seed; >1 runs the domain-parallel epoch protocol.")
  in
  let pkts_arg =
    Arg.(
      value & opt int 4096
      & info [ "pkts" ] ~docv:"N" ~doc:"Packets to stream across the swap.")
  in
  let at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"N"
          ~doc:"Packet count at which the swap is requested (default pkts/2).")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N" ~doc:"Harvest burst capacity per queue.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Workload and fault-plan seed: the run replays from this integer.")
  in
  let intensity_arg =
    Arg.(
      value & opt float 1.0
      & info [ "intensity" ] ~docv:"K"
          ~doc:"Scale every default chaos fault rate by K (clamped to 1).")
  in
  let no_chaos_arg =
    Arg.(
      value & flag
      & info [ "no-chaos" ]
          ~doc:"Stream fault-free (the fault layer still accounts packets).")
  in
  let dry_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Classification and certificate gate only: report what the swap \
             would do without standing up a datapath.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable outcome (schema opendesc-upgrade-2); \
             deterministic fields plus the measured producer quiesce pause \
             (pause_s), so pinned-seed output is bit-reproducible once \
             pause_s is filtered.")
  in
  let drill_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "drill" ] ~docv:"D"
          ~doc:
            "Certificate-gate failure drill: $(b,stale) (only the old \
             revision's certificate is held), $(b,missing) (no certificate \
             at all), or $(b,inject:MUT) (mutate the regenerated plan so \
             certification fails; MUT as in 'certify --inject').")
  in
  let run old_name new_name semantics intent_file alpha queues domains pkts at
      batch seed intensity no_chaos dry json drill_s =
    let registry = Opendesc.Semantic.default () in
    (* The canonical deployment intent: an RSS consumer. *)
    let semantics =
      match (semantics, intent_file) with
      | None, None -> Some "rss,pkt_len"
      | _ -> semantics
    in
    match intent_of_args ~semantics ~intent_file registry with
    | Error e -> fail "%s" e
    | Ok intent -> (
        let drill =
          match drill_s with
          | None -> Ok None
          | Some s -> (
              match U.drill_of_string s with
              | Some d -> Ok (Some d)
              | None ->
                  Error
                    (Printf.sprintf
                       "unknown drill %S (stale | missing | inject:<mutation>)"
                       s))
        in
        match drill with
        | Error e -> fail "%s" e
        | Ok drill -> (
            match
              (load_nic ~intent old_name, load_nic ~intent new_name)
            with
            | Error e, _ | _, Error e -> fail "%s" e
            | Ok old_spec, Ok new_spec -> (
                let outcome =
                  if dry then
                    U.dry_run ~alpha ?drill ~intent ~old_spec ~new_spec ()
                  else
                    let seed64 = Int64.of_int seed in
                    let plan =
                      if no_chaos then Driver.Fault.zero_plan seed64
                      else
                        Driver.Fault.scale intensity
                          (Driver.Fault.default_plan seed64)
                    in
                    U.run ~queues ~domains ~batch ~pkts ?at ~seed:seed64
                      ~plan ~alpha ?drill ~intent ~old_spec ~new_spec ()
                in
                match outcome with
                | Error e -> fail "%s" e
                | Ok o ->
                    if json then print_endline (U.to_json o)
                    else Format.printf "%a" U.pp o;
                    let clean =
                      o.U.o_lost = 0 && o.U.o_reconciled && o.U.o_torn = 0
                      && o.U.o_upgrade_errors = 0
                    in
                    if o.U.o_dry then `Ok ()
                    else (
                      match o.U.o_action with
                      | U.Applied when clean -> `Ok ()
                      | U.Applied ->
                          prerr_endline
                            "opendesc_cc: swap applied but packet accounting \
                             failed";
                          exit 1
                      | U.Refused r ->
                          prerr_endline ("opendesc_cc: swap refused: " ^ r);
                          exit 1
                      | U.Quarantined ->
                          Printf.eprintf
                            "opendesc_cc: breaking change quarantined: %d \
                             delivered, %d quarantined, %d withheld, lost %d\n"
                            o.U.o_delivered o.U.o_quarantined o.U.o_withheld
                            o.U.o_lost;
                          exit 1))))
  in
  Cmd.v
    (Cmd.info "upgrade"
       ~doc:
         "Live contract hot-swap: stream packets through a running datapath \
          on the old revision, classify the new revision's diff against the \
          deployment's served intent, and apply / refuse / quarantine the \
          swap at a quiescent point with every packet accounted."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Transparent changes apply immediately; recompile-class changes \
              recompile in the background and swap only under a \
              translation-validation certificate that is fresh against the \
              new contract hash (stale or missing certificates refuse the \
              swap, leaving the datapath on the old revision); breaking \
              changes drain in-flight completions and quarantine the \
              transition. Exit status is non-zero unless the swap applied \
              with zero packet loss and exact counter reconciliation.";
         ])
    Term.(
      ret
        (const run $ old_arg $ new_arg $ semantics_arg $ intent_arg
       $ alpha_arg $ queues_arg $ domains_arg $ pkts_arg $ at_arg $ batch_arg
       $ seed_arg $ intensity_arg $ no_chaos_arg $ dry_arg $ json_arg
       $ drill_arg))

(* --- shims --------------------------------------------------------- *)

let shims_cmd =
  let run () =
    print_endline
      "Reference P4 implementations (interpreted as SoftNIC shims when a\n\
       semantic is missing from the selected completion path):\n";
    let flow =
      Packet.Fivetuple.make ~src_ip:0x0a000001l ~dst_ip:0xc0a80001l ~src_port:1042
        ~dst_port:80 ~proto:6
    in
    let pkt =
      Packet.Builder.ipv4 ~vlan:100 ~ip_id:7 ~flow
        (Packet.Builder.Tcp { seq = 1l; flags = 0x10 })
    in
    Printf.printf "%-12s %-10s (on a sample vlan-tagged TCP packet)\n" "semantic"
      "value";
    List.iter
      (fun sem ->
        match Opendesc.Refimpl.interpret sem with
        | Ok f -> Printf.printf "%-12s %-10Ld\n" sem (f pkt)
        | Error e -> Printf.printf "%-12s error: %s\n" sem e)
      Opendesc.Refimpl.p4_semantics;
    print_endline "\nReference P4 source:";
    print_string Opendesc.Refimpl.source;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "shims"
       ~doc:"Show the reference P4 feature implementations and interpret them.")
    Term.(ret (const run $ const ()))

let main =
  let doc = "the OpenDesc prototype compiler" in
  Cmd.group
    (Cmd.info "opendesc_cc" ~version:"0.1.0" ~doc)
    [
      list_cmd; paths_cmd; cfg_cmd; compile_cmd; placement_cmd; validate_cmd;
      diff_cmd; parallel_cmd; chaos_cmd; lint_cmd; certify_cmd; cost_cmd;
      fuzz_cmd; upgrade_cmd; shims_cmd;
    ]

let () = exit (Cmd.eval main)
