(* Translation validation (certified compilation): re-prove, after the
   Eq. 1 optimizer and the accessor synthesizer have run, that what they
   produced still agrees with the deparser contract. The plan is lifted
   into a tiny codegen IR and symbolically executed with the same
   Absdom/Symexec machinery the source-level passes trust, on every
   feasible completion run the plan's configuration selects — so a
   codegen bug (wrong shift, swapped mask, dropped shim, off-by-one
   offset) cannot survive to the datapath. *)

module D = Diagnostic

type step =
  | SConst of int64
  | SLoad of { byte : int; bytes : int }
  | SShr of int
  | SAnd of int64
  | SBitwalk of { bit : int; bits : int }

(* The engine is packet-free by design; this is [Packet.Bitops.mask]. *)
let mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let steps_of ~bit_off ~bits =
  if bits > 64 then [ SConst 0L ]
  else if bit_off mod 8 = 0 && (bits = 8 || bits = 16 || bits = 32 || bits = 64)
  then [ SLoad { byte = bit_off / 8; bytes = bits / 8 } ]
  else begin
    let word_byte = bit_off / 64 * 8 in
    if bit_off + bits <= (word_byte * 8) + 64 then
      [
        SLoad { byte = word_byte; bytes = 8 };
        SShr ((word_byte * 8) + 64 - (bit_off + bits));
        SAnd (mask bits);
      ]
    else [ SBitwalk { bit = bit_off; bits } ]
  end

let highest_bit m =
  let rec go i =
    if i < 0 then -1
    else if Int64.logand (Int64.shift_left 1L i) m <> 0L then i
    else go (i - 1)
  in
  go 63

let lowest_bit m =
  let rec go i =
    if i > 63 then 64
    else if Int64.logand (Int64.shift_left 1L i) m <> 0L then i
    else go (i + 1)
  in
  go 0

(* The window of completion bits the chain's result depends on. The
   convention is MSB-first (the device writer's): after a big-endian
   load covering bits [lo, hi), value bit i (i = 0 at the LSB) holds
   completion bit hi - 1 - i — so a logical shift right by k drops the
   trailing k completion bits, and a mask keeps the sub-window between
   its highest and lowest set bits. *)
let footprint steps =
  List.fold_left
    (fun acc step ->
      match (step, acc) with
      | SConst _, _ -> None
      | SLoad { byte; bytes }, _ -> Some (8 * byte, (8 * byte) + (8 * bytes))
      | SBitwalk { bit; bits }, _ -> Some (bit, bit + bits)
      | SShr k, Some (lo, hi) -> Some (lo, max lo (hi - k))
      | SAnd m, Some (lo, hi) ->
          if m = 0L then Some (hi, hi)
          else
            let top = highest_bit m and bot = lowest_bit m in
            Some (max lo (hi - 1 - top), hi - bot)
      | (SShr _ | SAnd _), None -> None)
    None steps

let sym_value steps =
  List.fold_left
    (fun v step ->
      match step with
      | SConst c -> Absdom.const c
      | SLoad { bytes; _ } -> Absdom.of_width (8 * bytes)
      | SBitwalk { bits; _ } -> Absdom.of_width bits
      | SShr k -> Absdom.binop P4.Ast.Shr v (Absdom.const (Int64.of_int k))
      | SAnd m -> Absdom.binop P4.Ast.BAnd v (Absdom.const m))
    Absdom.Top steps

(* Abstract agreement on the observable facts: interval and known bits.
   The declared-width tag is deliberately ignored — a load/shift/mask
   chain carries the 64-bit load's width while the contract side carries
   the field's, and both describe the same value set. *)
let agree a b =
  match (a, b) with
  | Absdom.Num x, Absdom.Num y ->
      x.Absdom.lo = y.Absdom.lo
      && x.Absdom.hi = y.Absdom.hi
      && x.Absdom.kmask = y.Absdom.kmask
      && x.Absdom.kval = y.Absdom.kval
  | _ -> a = b

type accessor_plan = {
  ap_name : string;
  ap_header : string;
  ap_semantic : string option;
  ap_bits : int;
  ap_steps : step list;
  ap_range : int64 * int64;
}

type shim_plan = { sh_semantic : string; sh_width : int; sh_cost : float }

type plan = {
  pl_nic : string;
  pl_contract : string;
  pl_intent : (string * int) list;
  pl_path_index : int;
  pl_size_bytes : int;
  pl_config : (string * int64) list;
  pl_hw : (string * accessor_plan) list;
  pl_shims : shim_plan list;
  pl_fields : accessor_plan list;
}

type contract = {
  cf_tenv : P4.Typecheck.t;
  cf_deparser : P4.Typecheck.control_def;
  cf_registry : Registry_view.t;
  cf_line_offset : int;
}

type certificate = {
  c_nic : string;
  c_contract : string;
  c_intent : (string * int) list;
  c_path_index : int;
  c_size_bytes : int;
  c_reads : (string * (int64 * int64)) list;
  c_shims : string list;
  c_obligations : int;
}

let describe_config (c : (string * int64) list) =
  match c with
  | [] -> "{}"
  | c ->
      "{"
      ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%Ld" k v) c)
      ^ "}"

let range_string (lo, hi) = Printf.sprintf "[%Lu, %Lu]" lo hi

(* One distinct feasible completion layout, in encounter order over the
   enumerated configurations — the same order Path.enumerate assigns
   p_index, so "path #k" in messages matches the CLI's path listing. *)
type group = {
  g_key : int list;
  g_index : int;
  g_fields : Engine.afield list;
  g_bits : int;
}

let check (cf : contract) (plan : plan) : (certificate, D.t list) result =
  match Dep_ir.of_control cf.cf_tenv cf.cf_deparser with
  | Error msg ->
      Error
        [
          D.make ~code:"OD021" ~severity:D.Error
            "cannot certify %s: deparser IR unavailable (%s)" plan.pl_nic msg;
        ]
  | Ok ir ->
      let diags = ref [] in
      let add d = diags := d :: !diags in
      let obligations = ref 0 in
      let discharge () = incr obligations in
      let ctx = Ctxdom.find_in cf.cf_deparser.P4.Typecheck.ct_params in
      let ctx_name =
        match ctx with Some (p, _) -> p.P4.Typecheck.c_name | None -> "ctx"
      in
      let consts = P4.Typecheck.const_env cf.cf_tenv in
      let assignments =
        match ctx with
        | None -> [ [] ]
        | Some (_, h) -> (
            match Ctxdom.enumerate h with Ok a -> a | Error _ -> [ [] ])
      in
      (* Feasibility comes from the symbolic walk, exactly as in the
         engine's OD020 pass: a forked run whose emit sequence is proved
         unreachable is not a completion the device can emit. *)
      let sym =
        Symexec.exec
          ~base:
            (Symexec.base_env ~consts ~ctx
               ~params:cf.cf_deparser.P4.Typecheck.ct_params ())
          ir
      in
      let key (r : Dep_ir.run) =
        List.map
          (fun (x : Dep_ir.exec_emit) -> x.Dep_ir.x_emit.Dep_ir.e_id)
          r.Dep_ir.r_emits
      in
      let feasible r =
        let ids = key r in
        List.exists
          (fun (l : Symexec.leaf) ->
            l.Symexec.lf_feasible && l.Symexec.lf_emit_ids = ids)
          sym.Symexec.sx_leaves
      in
      let runs_of a =
        Dep_ir.run ~consts ~ctx_env:(Ctxdom.env_of ~param_name:ctx_name a) ir
      in
      let catalogue = ref [] in
      List.iter
        (fun a ->
          List.iter
            (fun r ->
              if feasible r && not (List.exists (fun g -> g.g_key = key r) !catalogue)
              then
                catalogue :=
                  !catalogue
                  @ [
                      {
                        g_key = key r;
                        g_index = List.length !catalogue;
                        g_fields = Engine.fields_of_run r;
                        g_bits = r.Dep_ir.r_total_bits;
                      };
                    ])
            (runs_of a))
        assignments;
      let config = describe_config plan.pl_config in
      (* Every feasible run the plan's configuration selects — several
         when runtime-data branches fork (each must agree with the plan,
         or a fixed-offset read can observe unwritten bytes). *)
      let chosen =
        List.fold_left
          (fun acc r ->
            if feasible r && not (List.exists (fun r' -> key r' = key r) acc)
            then acc @ [ r ]
            else acc)
          []
          (runs_of plan.pl_config)
      in
      (* Intent coverage: Eq. 1 must leave no required semantic behind —
         hardware-bound or scheduled as a shim, never silently dropped. *)
      List.iter
        (fun (s, _) ->
          if
            List.mem_assoc s plan.pl_hw
            || List.exists (fun sh -> sh.sh_semantic = s) plan.pl_shims
          then discharge ()
          else
            add
              (D.make ~span:cf.cf_deparser.P4.Typecheck.ct_span ~code:"OD022"
                 ~severity:D.Error
                 "required semantic %S is neither read from hardware nor \
                  scheduled as a SoftNIC shim"
                 s))
        plan.pl_intent;
      if chosen = [] then
        add
          (D.make ~span:cf.cf_deparser.P4.Typecheck.ct_span ~code:"OD023"
             ~severity:D.Error
             "plan for path #%d: configuration %s selects no feasible \
              completion run"
             plan.pl_path_index config);
      let check_accessor ~what ~(run : Dep_ir.run) ~group_index
          (ap : accessor_plan) (af : Engine.afield) =
        if ap.ap_bits <> af.af_bits then
          add
            (D.make ~span:af.af_span ~code:"OD021" ~severity:D.Error
               "accessor for %s claims %d bits but the deparser writes %d \
                bits under %s"
               what ap.ap_bits af.af_bits config);
        let expected =
          if af.af_bits > 64 then None
          else Some (af.af_bit_off, af.af_bit_off + af.af_bits)
        in
        let actual = footprint ap.ap_steps in
        (if actual = expected then discharge ()
         else
           match actual with
           | None ->
               add
                 (D.make ~span:af.af_span ~code:"OD021" ~severity:D.Error
                    "accessor for %s reads no completion bytes but the \
                     deparser writes the field at bits [%d, %d) under %s"
                    what af.af_bit_off
                    (af.af_bit_off + af.af_bits)
                    config)
           | Some (alo, ahi) -> (
               let other =
                 List.find_opt
                   (fun g ->
                     g.g_index <> group_index
                     && List.exists
                          (fun (gaf : Engine.afield) ->
                            gaf.Engine.af_bit_off = alo
                            && gaf.Engine.af_bit_off + gaf.Engine.af_bits = ahi
                            && (gaf.Engine.af_semantic = ap.ap_semantic
                               || gaf.Engine.af_name = ap.ap_name))
                          g.g_fields)
                   !catalogue
               in
               match other with
               | Some g ->
                   add
                     (D.make ~span:af.af_span ~code:"OD023" ~severity:D.Error
                        "accessor for %s reads bits [%d, %d) — path #%d's \
                         placement, not path #%d's [%d, %d) selected by %s"
                        what alo ahi g.g_index group_index af.af_bit_off
                        (af.af_bit_off + af.af_bits)
                        config)
               | None ->
                   if ahi > run.Dep_ir.r_total_bits then
                     add
                       (D.make ~span:af.af_span ~code:"OD023" ~severity:D.Error
                          "accessor for %s reads bits [%d, %d), past the %dB \
                           completion emitted under %s (Size(p) = %d bits)"
                          what alo ahi
                          (run.Dep_ir.r_total_bits / 8)
                          config run.Dep_ir.r_total_bits)
                   else
                     add
                       (D.make ~span:af.af_span ~code:"OD021" ~severity:D.Error
                          "accessor for %s reads bits [%d, %d) but the \
                           deparser writes the field at bits [%d, %d) under %s"
                          what alo ahi af.af_bit_off
                          (af.af_bit_off + af.af_bits)
                          config)));
        (* Value agreement both directions: the chain's abstraction must
           coincide with the contract's (any bit<w> value) on interval
           and known bits — inclusion each way. *)
        let expected_v =
          if af.af_bits > 64 then Absdom.const 0L else Absdom.of_width af.af_bits
        in
        let actual_v = sym_value ap.ap_steps in
        if agree actual_v expected_v then discharge ()
        else
          add
            (D.make ~span:af.af_span ~code:"OD021" ~severity:D.Error
               "accessor for %s evaluates to %s but the deparser contract \
                admits %s under %s"
               what
               (Absdom.to_string actual_v)
               (Absdom.to_string expected_v)
               config);
        (* The range the compiler stamped on the accessor (registry-
           clamped, the OD011 contract) must be reproducible from the
           contract alone. *)
        let claimed_exp =
          if af.af_bits > 64 then (0L, 0L)
          else
            let eff =
              match ap.ap_semantic with
              | Some s -> (
                  match cf.cf_registry.Registry_view.width s with
                  | Some r when r < af.af_bits -> r
                  | _ -> af.af_bits)
              | None -> af.af_bits
            in
            match Absdom.(range (of_width eff)) with
            | Some r -> r
            | None -> (0L, 0L)
        in
        if ap.ap_range = claimed_exp then discharge ()
        else
          add
            (D.make ~span:af.af_span ~code:"OD021" ~severity:D.Error
               "accessor for %s claims certified range %s but the contract \
                yields %s"
               what
               (range_string ap.ap_range)
               (range_string claimed_exp))
      in
      List.iter
        (fun (run : Dep_ir.run) ->
          let afs = Engine.fields_of_run run in
          let group_index =
            match List.find_opt (fun g -> g.g_key = key run) !catalogue with
            | Some g -> g.g_index
            | None -> plan.pl_path_index
          in
          if run.Dep_ir.r_total_bits <> plan.pl_size_bytes * 8 then
            add
              (D.make ~span:cf.cf_deparser.P4.Typecheck.ct_span ~code:"OD023"
                 ~severity:D.Error
                 "plan certified for path #%d (%dB) but configuration %s \
                  selects path #%d, a %dB completion"
                 plan.pl_path_index plan.pl_size_bytes config group_index
                 (run.Dep_ir.r_total_bits / 8))
          else discharge ();
          List.iter
            (fun (s, ap) ->
              match
                List.find_opt
                  (fun (af : Engine.afield) -> af.Engine.af_semantic = Some s)
                  afs
              with
              | None ->
                  add
                    (D.make ~span:cf.cf_deparser.P4.Typecheck.ct_span
                       ~code:"OD022" ~severity:D.Error
                       "plan claims %S hardware-provided but the completion \
                        emitted under %s does not carry it"
                       s config)
              | Some af ->
                  check_accessor
                    ~what:(Printf.sprintf "semantic %S" s)
                    ~run ~group_index ap af)
            plan.pl_hw;
          if List.length plan.pl_fields <> List.length afs then
            add
              (D.make ~span:cf.cf_deparser.P4.Typecheck.ct_span ~code:"OD023"
                 ~severity:D.Error
                 "plan lists %d field accessors but the completion emitted \
                  under %s has %d fields"
                 (List.length plan.pl_fields)
                 config (List.length afs))
          else
            List.iter2
              (fun ap (af : Engine.afield) ->
                if
                  ap.ap_name <> af.Engine.af_name
                  || ap.ap_header <> af.Engine.af_header
                then
                  add
                    (D.make ~span:af.Engine.af_span ~code:"OD023"
                       ~severity:D.Error
                       "plan's field accessor %s.%s does not correspond to \
                        %s.%s emitted under %s"
                       ap.ap_header ap.ap_name af.Engine.af_header
                       af.Engine.af_name config)
                else
                  check_accessor
                    ~what:(Printf.sprintf "field %s.%s" ap.ap_header ap.ap_name)
                    ~run ~group_index ap af)
              plan.pl_fields afs)
        chosen;
      if !diags = [] && chosen <> [] then
        Ok
          {
            c_nic = plan.pl_nic;
            c_contract = plan.pl_contract;
            c_intent = plan.pl_intent;
            c_path_index = plan.pl_path_index;
            c_size_bytes = plan.pl_size_bytes;
            c_reads =
              List.map
                (fun ap ->
                  ( ap.ap_header ^ "." ^ ap.ap_name,
                    match Absdom.range (sym_value ap.ap_steps) with
                    | Some r -> r
                    | None -> (0L, 0L) ))
                plan.pl_fields;
            c_shims = List.map (fun sh -> sh.sh_semantic) plan.pl_shims;
            c_obligations = !obligations;
          }
      else
        Error
          (List.rev !diags
          |> List.map (D.relocate ~lines:cf.cf_line_offset)
          |> List.sort_uniq D.compare)

let short_hash h = if String.length h > 12 then String.sub h 0 12 else h

let validate (c : certificate) ~contract_hash =
  if String.equal c.c_contract contract_hash then []
  else
    [
      D.make ~code:"OD024" ~severity:D.Error
        "stale certificate for %s path #%d: proved against contract %s but \
         the current contract is %s; recompile and re-certify before \
         swapping accessors"
        c.c_nic c.c_path_index (short_hash c.c_contract)
        (short_hash contract_hash);
    ]

(* ------------------------------------------------------------------ *)
(* Serialization: line-oriented, stable, greppable. *)

let to_text (c : certificate) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "opendesc-cert-1\n";
  add "nic %s\n" c.c_nic;
  add "contract %s\n" c.c_contract;
  add "path %d\n" c.c_path_index;
  add "size %d\n" c.c_size_bytes;
  add "obligations %d\n" c.c_obligations;
  add "intent %s\n"
    (match c.c_intent with
    | [] -> "-"
    | fs ->
        String.concat ","
          (List.map (fun (s, w) -> Printf.sprintf "%s:%d" s w) fs));
  add "shims %s\n"
    (match c.c_shims with [] -> "-" | ss -> String.concat "," ss);
  List.iter
    (fun (name, (lo, hi)) -> add "read %s 0x%Lx 0x%Lx\n" name lo hi)
    c.c_reads;
  Buffer.contents buf

let of_text src =
  let lines =
    String.split_on_char '\n' src
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "opendesc-cert-1" :: rest -> (
      let kv = Hashtbl.create 8 in
      let reads = ref [] in
      let err = ref None in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None -> err := Some (Printf.sprintf "malformed line %S" line)
          | Some i -> (
              let k = String.sub line 0 i in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              match k with
              | "read" -> (
                  match String.split_on_char ' ' v with
                  | [ name; lo; hi ] -> (
                      match
                        (Int64.of_string_opt lo, Int64.of_string_opt hi)
                      with
                      | Some lo, Some hi -> reads := (name, (lo, hi)) :: !reads
                      | _ -> err := Some (Printf.sprintf "bad read line %S" v))
                  | _ -> err := Some (Printf.sprintf "bad read line %S" v))
              | _ -> Hashtbl.replace kv k v))
        rest;
      let get k = Hashtbl.find_opt kv k in
      let get_int k = Option.bind (get k) int_of_string_opt in
      match !err with
      | Some e -> Error e
      | None -> (
          match
            (get "nic", get "contract", get_int "path", get_int "size",
             get_int "obligations")
          with
          | Some nic, Some contract, Some path, Some size, Some obl ->
              let parse_list = function
                | None | Some "-" -> []
                | Some s -> String.split_on_char ',' s
              in
              let intent =
                List.filter_map
                  (fun entry ->
                    match String.split_on_char ':' entry with
                    | [ s; w ] ->
                        Option.map (fun w -> (s, w)) (int_of_string_opt w)
                    | _ -> None)
                  (parse_list (get "intent"))
              in
              Ok
                {
                  c_nic = nic;
                  c_contract = contract;
                  c_intent = intent;
                  c_path_index = path;
                  c_size_bytes = size;
                  c_reads = List.rev !reads;
                  c_shims = parse_list (get "shims");
                  c_obligations = obl;
                }
          | _ -> Error "missing certificate header fields"))
  | _ -> Error "not an opendesc-cert-1 document"

let certificate_json (c : certificate) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"schema\":\"opendesc-cert-1\",\"nic\":\"%s\",\"contract\":\"%s\""
    (D.json_escape c.c_nic) (D.json_escape c.c_contract);
  add ",\"path\":%d,\"size_bytes\":%d,\"obligations\":%d" c.c_path_index
    c.c_size_bytes c.c_obligations;
  add ",\"intent\":[%s]"
    (String.concat ","
       (List.map
          (fun (s, w) ->
            Printf.sprintf "{\"semantic\":\"%s\",\"width\":%d}"
              (D.json_escape s) w)
          c.c_intent));
  add ",\"shims\":[%s]"
    (String.concat ","
       (List.map (fun s -> Printf.sprintf "\"%s\"" (D.json_escape s)) c.c_shims));
  add ",\"reads\":[%s]"
    (String.concat ","
       (List.map
          (fun (name, (lo, hi)) ->
            Printf.sprintf "{\"field\":\"%s\",\"lo\":\"0x%Lx\",\"hi\":\"0x%Lx\"}"
              (D.json_escape name) lo hi)
          c.c_reads));
  add "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Seeded miscompilations. *)

type mutation = Wrong_shift | Swapped_mask | Dropped_shim | Off_by_one

let mutations = [ Wrong_shift; Swapped_mask; Dropped_shim; Off_by_one ]

let mutation_name = function
  | Wrong_shift -> "wrong-shift"
  | Swapped_mask -> "swapped-mask"
  | Dropped_shim -> "dropped-shim"
  | Off_by_one -> "off-by-one"

let mutation_of_string s =
  List.find_opt (fun m -> mutation_name m = s) mutations

let expected_codes = function
  | Wrong_shift | Swapped_mask -> [ "OD021" ]
  | Dropped_shim -> [ "OD022" ]
  | Off_by_one -> [ "OD021"; "OD023" ]

let map_first xs f =
  let rec go acc = function
    | [] -> None
    | x :: rest -> (
        match f x with
        | Some y -> Some (List.rev_append acc (y :: rest))
        | None -> go (x :: acc) rest)
  in
  go [] xs

(* Apply [f] to the first accessor it accepts — hardware bindings first
   (the reads a driver actually performs), field accessors as fallback. *)
let try_update plan f =
  match map_first plan.pl_hw (fun (s, ap) -> Option.map (fun a -> (s, a)) (f ap)) with
  | Some hw -> Some { plan with pl_hw = hw }
  | None -> (
      match map_first plan.pl_fields f with
      | Some fields -> Some { plan with pl_fields = fields }
      | None -> None)

let replace_first_step ap f =
  let changed = ref false in
  let steps =
    List.map
      (fun s ->
        if !changed then s
        else
          match f s with
          | Some s' ->
              changed := true;
              s'
          | None -> s)
      ap.ap_steps
  in
  if !changed then Some { ap with ap_steps = steps } else None

let inject m plan =
  let orelse a b = match a with Some p -> p | None -> b () in
  match m with
  | Wrong_shift ->
      orelse
        (try_update plan (fun ap ->
             replace_first_step ap (function
               | SShr k -> Some (SShr (k + 1))
               | _ -> None)))
        (fun () ->
          orelse
            (try_update plan (fun ap ->
                 if ap.ap_bits <= 64 && footprint ap.ap_steps <> None then
                   Some { ap with ap_steps = ap.ap_steps @ [ SShr 1 ] }
                 else None))
            (fun () -> plan))
  | Swapped_mask ->
      orelse
        (try_update plan (fun ap ->
             replace_first_step ap (function
               | SAnd m -> Some (SAnd (Int64.shift_right_logical m 1))
               | _ -> None)))
        (fun () ->
          orelse
            (try_update plan (fun ap ->
                 if ap.ap_bits <= 64 && footprint ap.ap_steps <> None then
                   Some { ap with ap_steps = ap.ap_steps @ [ SAnd (mask (ap.ap_bits - 1)) ] }
                 else None))
            (fun () -> plan))
  | Off_by_one ->
      orelse
        (try_update plan (fun ap ->
             replace_first_step ap (function
               | SLoad { byte; bytes } -> Some (SLoad { byte = byte + 1; bytes })
               | SBitwalk { bit; bits } -> Some (SBitwalk { bit = bit + 1; bits })
               | _ -> None)))
        (fun () -> plan)
  | Dropped_shim -> (
      match plan.pl_shims with
      | _ :: rest -> { plan with pl_shims = rest }
      | [] -> (
          match plan.pl_hw with
          | _ :: rest -> { plan with pl_hw = rest }
          | [] -> plan))
