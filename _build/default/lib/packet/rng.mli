(** Deterministic pseudo-random number generation for workload synthesis.

    All workload generators in this repository draw from this SplitMix64
    implementation so that every experiment is reproducible bit-for-bit
    across runs and machines, independently of [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at the same point. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val byte : t -> char
(** Uniform byte. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform bytes. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the integer weights.
    Requires at least one strictly positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
