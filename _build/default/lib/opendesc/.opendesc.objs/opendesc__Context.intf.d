lib/opendesc/context.mli: Format P4
