type binding = Hardware of Accessor.t | Software of Softnic.Feature.t

type t = {
  nic : Nic_spec.t;
  intent : Intent.t;
  outcome : Select.outcome;
  bindings : (string * binding) list;
  field_accessors : Accessor.t list;
  config : Context.assignment;
  tx_format : Descparser.t option;
  tx_missing : string list;
  registry : Semantic.t;
}

let path t = t.outcome.chosen.s_path

let missing t =
  List.filter_map
    (fun (s, b) -> match b with Software _ -> Some s | Hardware _ -> None)
    t.bindings

let hardware t =
  List.filter_map
    (fun (s, b) -> match b with Hardware _ -> Some s | Software _ -> None)
    t.bindings

let shims t =
  List.filter_map
    (fun (_, b) -> match b with Software f -> Some f | Hardware _ -> None)
    t.bindings

let software_pipeline ?env t = Softnic.Pipeline.create ?env (shims t)

let c_source t =
  let missing_costs =
    List.map (fun s -> (s, Semantic.cost t.registry s)) (missing t)
  in
  Codegen_c.generate ~nic:t.nic.nic_name ~path:(path t) ~missing:missing_costs
    ~config:t.config

let datapath_source t =
  let missing_costs = List.map (fun s -> (s, Semantic.cost t.registry s)) (missing t) in
  Codegen_c.datapath ~nic:t.nic.nic_name ~path:(path t)
    ~requested:(Intent.required t.intent) ~missing:missing_costs ~config:t.config
    ~tx_format:t.tx_format

let ebpf_source t =
  Codegen_ebpf.generate ~nic:t.nic.nic_name ~path:(path t)
    ~requested:(Intent.required t.intent)

let smallest_tx_format (nic : Nic_spec.t) =
  match nic.tx_formats with
  | [] -> None
  | fs ->
      Some
        (List.fold_left
           (fun best f -> if Descparser.size f < Descparser.size best then f else best)
           (List.hd fs) (List.tl fs))

(* TX side of the selection: among the NIC's accepted descriptor formats,
   prefer full coverage of the TX intent, then the smallest descriptor —
   the host-to-NIC mirror of Eq. 1 (posting bytes is the DMA cost; an
   inexpressible offload hint means host software must pre-apply it). *)
let choose_tx_format (nic : Nic_spec.t) = function
  | None -> (smallest_tx_format nic, [])
  | Some tx_intent -> (
      let wanted = Intent.required tx_intent in
      let missing_of f =
        List.filter (fun s -> Descparser.field_for f s = None) wanted
      in
      let ranked =
        List.sort
          (fun a b ->
            match
              compare (List.length (missing_of a)) (List.length (missing_of b))
            with
            | 0 -> compare (Descparser.size a) (Descparser.size b)
            | c -> c)
          nic.tx_formats
      in
      match ranked with
      | [] -> (None, wanted)
      | best :: _ -> (Some best, missing_of best))

(* The memoization key of one compilation (see {!Cache}): NIC interface
   identity x intent canonical form x alpha x TX intent. Everything else
   [run] consumes (semantic registry, SoftNIC registry) must be the
   defaults for the key to be sound — which is why {!Cache.run} exposes
   no [?registry]/[?softnic] parameters. *)
let signature_of_fingerprint ?alpha ?tx_intent ~intent fingerprint =
  String.concat "\x00"
    [
      fingerprint;
      Intent.canonical intent;
      string_of_float
        (match alpha with Some a -> a | None -> Select.default_alpha);
      (match tx_intent with Some i -> Intent.canonical i | None -> "-");
    ]

let signature ?alpha ?tx_intent ~intent (nic : Nic_spec.t) =
  signature_of_fingerprint ?alpha ?tx_intent ~intent (Nic_spec.fingerprint nic)

let run ?alpha ?registry ?softnic ?tx_intent ~intent (nic : Nic_spec.t) =
  let registry = match registry with Some r -> r | None -> Semantic.default () in
  let softnic = match softnic with Some r -> r | None -> Softnic.Registry.builtin () in
  match Select.choose ?alpha registry intent nic.paths with
  | Error e -> Error (Printf.sprintf "%s: %s" nic.nic_name (Select.error_to_string e))
  | Ok outcome -> (
      let chosen = outcome.chosen.s_path in
      let bind sem =
        match Path.field_for chosen sem with
        | Some f ->
            Ok
              ( sem,
                Hardware
                  (Accessor.of_lfield ?registry_bits:(Semantic.width registry sem) f) )
        | None -> (
            match Softnic.Registry.find softnic sem with
            | Some feature -> Ok (sem, Software feature)
            | None ->
                Error
                  (Printf.sprintf
                     "%s: semantic %s has finite cost %.0f but no software \
                      implementation is registered"
                     nic.nic_name sem
                     (Semantic.cost registry sem)))
      in
      let rec bind_all acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
            match bind s with Ok b -> bind_all (b :: acc) rest | Error e -> Error e)
      in
      match bind_all [] (Intent.required intent) with
      | Error e -> Error e
      | Ok bindings ->
          let tx_format, tx_missing = choose_tx_format nic tx_intent in
          Ok
            {
              nic;
              intent;
              outcome;
              bindings;
              field_accessors =
                Accessor.of_layout
                  ~registry_width:(Semantic.width registry) chosen.p_layout;
              config =
                (match chosen.p_assignments with a :: _ -> a | [] -> []);
              tx_format;
              tx_missing;
              registry;
            })

(* ------------------------------------------------------------------ *)
(* Certified compilation: lift this compilation into the analysis
   layer's plan IR and translation-validate it against the deparser
   contract (docs/CERTIFICATION.md). *)

let contract_hash (nic : Nic_spec.t) =
  Digest.to_hex (Digest.string (Nic_spec.fingerprint nic))

let to_plan (t : t) : Opendesc_analysis.Certify.plan =
  let plan_of_accessor (a : Accessor.t) =
    {
      Opendesc_analysis.Certify.ap_name = a.a_name;
      ap_header = a.a_header;
      ap_semantic = a.a_semantic;
      ap_bits = a.a_bits;
      ap_steps =
        Opendesc_analysis.Certify.steps_of ~bit_off:a.a_bit_off ~bits:a.a_bits;
      ap_range = a.a_range;
    }
  in
  let chosen = path t in
  {
    Opendesc_analysis.Certify.pl_nic = t.nic.nic_name;
    pl_contract = contract_hash t.nic;
    pl_intent =
      List.map (fun (f : Intent.field) -> (f.if_semantic, f.if_width))
        t.intent.fields;
    pl_path_index = chosen.p_index;
    pl_size_bytes = Path.size chosen;
    pl_config = t.config;
    pl_hw =
      List.filter_map
        (fun (s, b) ->
          match b with
          | Hardware a -> Some (s, plan_of_accessor a)
          | Software _ -> None)
        t.bindings;
    pl_shims =
      List.filter_map
        (fun (_, b) ->
          match b with
          | Software (f : Softnic.Feature.t) ->
              Some
                {
                  Opendesc_analysis.Certify.sh_semantic = f.semantic;
                  sh_width = f.width_bits;
                  sh_cost = f.cost_cycles;
                }
          | Hardware _ -> None)
        t.bindings;
    pl_fields = List.map plan_of_accessor t.field_accessors;
  }

let contract (t : t) : Opendesc_analysis.Certify.contract =
  {
    Opendesc_analysis.Certify.cf_tenv = t.nic.tenv;
    cf_deparser = t.nic.deparser;
    cf_registry = Nic_spec.registry_view t.registry;
    cf_line_offset = Prelude.line_offset;
  }

let certify t = Opendesc_analysis.Certify.check (contract t) (to_plan t)

let tx_writer t sem =
  match t.tx_format with
  | None -> None
  | Some fmt -> (
      match Descparser.field_for fmt sem with
      | Some f -> Some (Accessor.writer ~bit_off:f.l_bit_off ~bits:f.l_bits)
      | None -> None)

let run_exn ?alpha ?registry ?softnic ?tx_intent ~intent nic =
  match run ?alpha ?registry ?softnic ?tx_intent ~intent nic with
  | Ok t -> t
  | Error e -> failwith e
