examples/kvs_offload.ml: Driver List Nic_models Opendesc Packet Printf Softnic String
