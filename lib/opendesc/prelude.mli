(** The standard OpenDesc P4 prelude.

    Declares the extern object types of the paper's interface templates
    (Figures 3 and 4): [desc_in], the byte stream a descriptor parser
    consumes, and [cmpt_out], the completion stream a deparser emits to.
    Every NIC description and intent is checked against this prelude. *)

val source : string
(** P4 source of the prelude. *)

val line_offset : int
(** Number of lines the prelude prepends to a NIC source; subtract from a
    span's line to recover the position in the user's own file. *)

val check : string -> P4.Typecheck.t
(** [check nic_source] typechecks [prelude ^ nic_source].
    @raise P4.Typecheck.Type_error, [P4.Parser.Error], [P4.Lexer.Error]. *)

val check_result : string -> (P4.Typecheck.t, string) result
(** Same, with rendered error messages. *)
