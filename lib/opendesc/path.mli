(** Completion paths: concrete metadata layouts a NIC may emit (§4 step 2).

    A completion path is characterised by the emit sequence the deparser
    performs under one context configuration. We enumerate paths by
    executing the deparser body under {e every} assignment of the context
    fields ({!Context.enumerate}) — unlike a syntactic root-to-leaf walk
    of the CFG this prunes infeasible predicate combinations for free, and
    it yields, per path, the exact set of configurations that select it
    (which is what the driver later programs over the control channel).

    Per path we compute the paper's characterisation:
    Prov(p) = union of emitted field semantics, Size(p) = total bytes,
    plus the concrete field layout used for accessor synthesis. *)

(** One field of the completion record, with its absolute position. *)
type lfield = {
  l_name : string;
  l_header : string;  (** header the field came from *)
  l_semantic : string option;
  l_bit_off : int;  (** absolute offset from the start of the completion *)
  l_bits : int;
  l_span : P4.Loc.span;  (** declaration site of the source field *)
}

type layout = { fields : lfield list; size_bytes : int }

type t = {
  p_index : int;  (** stable index among the control's paths *)
  p_emits : (string * P4.Typecheck.header_def) list;
      (** (pretty-printed argument, emitted header) in order *)
  p_layout : layout;
  p_prov : string list;  (** Prov(p), sorted, distinct *)
  p_assignments : Context.assignment list;
      (** every context configuration that selects this path *)
}

val size : t -> int
(** Size(p) in bytes. *)

val provides : t -> string -> bool

val field_for : t -> string -> lfield option
(** First layout field carrying the given semantic. *)

exception Exec_error of string
(** Raised by the shared layout machinery on malformed layouts. *)

val layout_of_emits : (string * P4.Typecheck.header_def) list -> layout
(** Concatenate headers into an absolute field layout.
    @raise Exec_error when the total is not byte-aligned. *)

(** How the symbolic engine reduced the enumeration work. *)
type pruning = {
  pr_syntactic : int;  (** root-to-leaf completion paths in the decision tree *)
  pr_feasible : int;  (** leaves with a satisfiable path condition *)
  pr_pruned : int;  (** leaves proved unreachable by abstract interpretation *)
  pr_runs : int;  (** concrete deparser executions actually performed *)
  pr_configs : int;  (** context configurations covered by those runs *)
}

val enumerate :
  P4.Typecheck.t -> P4.Typecheck.control_def -> (t list, string) result
(** All distinct completion paths of a deparser. Errors when: the control
    lacks a [cmpt_out] parameter; a branch condition is not decidable
    from the context; an emitted expression is not a byte-aligned header;
    or the context space is unbounded.

    The walk is memoized on the branch-influencing context fields (a
    taint closure through locals), so the number of concrete executions
    is the size of the projected configuration space, not the full
    product — the result is identical to {!enumerate_product}. *)

val enumerate_pruned :
  P4.Typecheck.t ->
  P4.Typecheck.control_def ->
  (t list * pruning, string) result
(** {!enumerate} plus the symbolic pruning census. *)

val enumerate_product :
  P4.Typecheck.t -> P4.Typecheck.control_def -> (t list, string) result
(** Reference enumeration: one concrete execution per configuration in
    the full cartesian product (the pre-pruning implementation). Kept for
    differential testing and the bench's speedup measurement. *)

val pp : Format.formatter -> t -> unit
