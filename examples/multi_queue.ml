(* Multiple OpenDesc instances on one NIC.

   The paper (§3): "applications might use multiple OpenDesc instances
   with different intents to obtain different queues tailored for
   different kinds of traffic."

   A ConnectX-style multi-queue device serves two instances of the same
   application:
   - queue 0, fast path: KVS requests want only the flow hash — the
     compiler selects the 8-byte compressed mini-CQE;
   - queue 1, telemetry: wants the full metadata set — the compiler
     selects the 64-byte CQE.
   The device steers by destination port (a flow rule); within a queue,
   the RSS-steered multi-queue machinery (Driver.Mq) demonstrates flow
   affinity.

   Run with: dune exec examples/multi_queue.exe *)

let () =
  let model () = Nic_models.Mlx5.model () in

  (* Queue 0: fast path. Compilations go through the memo cache — every
     further queue with the same (NIC, intent, alpha) is a lookup. *)
  let fast_intent = Opendesc.Intent.make [ ("rss", 32); ("pkt_len", 32) ] in
  let fast = Opendesc.Cache.run_exn ~intent:fast_intent (model ()).spec in

  (* Queue 1: telemetry. *)
  let telemetry_intent =
    Opendesc.Intent.make
      (List.map (fun s -> (s, 32)) Nic_models.Mlx5.full_cqe_semantics)
  in
  let telemetry = Opendesc.Cache.run_exn ~intent:telemetry_intent (model ()).spec in

  Printf.printf "queue 0 (fast path) : %s\n" (Opendesc.Report.summary_line fast);
  Printf.printf "queue 1 (telemetry) : %s\n\n" (Opendesc.Report.summary_line telemetry);

  (* One multi-queue device, one config per negotiated instance. *)
  let mq =
    Driver.Mq.create_exn ~queue_depth:1024
      ~configs:[| fast.config; telemetry.config |]
      model
  in

  (* Steering: KVS traffic (UDP/11211) to queue 0, the rest to queue 1 —
     a flow rule in front of the RSS stage. *)
  let kvs = Packet.Workload.make ~seed:41L Packet.Workload.(Kvs { key_len = 8 }) in
  let web = Packet.Workload.make ~seed:43L Packet.Workload.Imix in
  let q0_pkts = ref 0 and q1_pkts = ref 0 in
  for i = 1 to 1024 do
    let pkt =
      if i mod 2 = 0 then Packet.Workload.next kvs else Packet.Workload.next web
    in
    let v = Packet.Pkt.parse pkt in
    if v.dst_port = 11211 then begin
      assert (Driver.Device.rx_inject (Driver.Mq.queue mq 0) pkt);
      incr q0_pkts
    end
    else begin
      assert (Driver.Device.rx_inject (Driver.Mq.queue mq 1) pkt);
      incr q1_pkts
    end
  done;

  (* Drain both queues through their own accessors, harvesting the rings
     in bursts of 64 instead of one completion at a time. *)
  let drain name idx (compiled : Opendesc.Compile.t) =
    let device = Driver.Mq.queue mq idx in
    let burst = Driver.Device.burst_create ~capacity:64 device in
    let hash_sum = ref 0L and n = ref 0 and bursts = ref 0 in
    let rec go () =
      let k = Driver.Device.rx_consume_batch device burst in
      if k > 0 then begin
        incr bursts;
        for i = 0 to k - 1 do
          (match List.assoc "rss" compiled.bindings with
          | Opendesc.Compile.Hardware a ->
              hash_sum :=
                Int64.add !hash_sum (a.a_get burst.Driver.Device.bs_cmpts.(i))
          | Opendesc.Compile.Software _ -> ());
          incr n
        done;
        go ()
      end
    in
    go ();
    Printf.printf
      "%s: %4d packets in %2d bursts, completion %2dB, dma %6d B total (%.1f \
       B/pkt)\n"
      name !n !bursts
      (Opendesc.Path.size (Opendesc.Compile.path compiled))
      (Driver.Device.dma_bytes device)
      (float_of_int (Driver.Device.dma_bytes device) /. float_of_int (max 1 !n))
  in
  drain "queue 0 (mini-CQE)" 0 fast;
  drain "queue 1 (full CQE)" 1 telemetry;
  Printf.printf "\nsteering: %d kvs-port packets -> queue 0, %d others -> queue 1\n"
    !q0_pkts !q1_pkts;

  (* And within a service: RSS steering across 4 same-config queues keeps
     per-connection affinity. *)
  (* Four queues, one intent: three of the four compilations are cache
     hits (the key is the NIC's layout fingerprint, so even fresh model
     instances hit). *)
  let per_queue =
    Array.init 4 (fun _ -> Opendesc.Cache.run_exn ~intent:fast_intent (model ()).spec)
  in
  let rss_mq =
    Driver.Mq.create_exn ~queue_depth:1024
      ~configs:(Array.map (fun (c : Opendesc.Compile.t) -> c.config) per_queue)
      model
  in
  let w = Packet.Workload.make ~seed:47L ~flows:24 Packet.Workload.Min_size in
  for _ = 1 to 1024 do
    ignore (Driver.Mq.rx_inject rss_mq (Packet.Workload.next w))
  done;
  print_endline "\nRSS steering of 24 flows across 4 fast-path queues:";
  Array.iteri (Printf.printf "  queue %d: %d packets\n") (Driver.Mq.rx_counts rss_mq);
  (* One batched polling sweep across all four queues. *)
  let bursts = Driver.Mq.bursts ~capacity:64 rss_mq in
  let sweeps = ref 0 and harvested = ref 0 in
  let rec sweep () =
    let got = Driver.Mq.drain_batched rss_mq bursts ~f:(fun _ _ -> ()) in
    if got > 0 then begin
      incr sweeps;
      harvested := !harvested + got;
      sweep ()
    end
  in
  sweep ();
  Printf.printf "drained %d packets in %d burst sweeps (max 64/queue/sweep)\n"
    !harvested !sweeps;
  Printf.printf "%s\n" (Opendesc.Cache.stats_line ());
  print_endline
    "\nTwo intents, two negotiated formats, one device type — per-queue\n\
     completion layouts are exactly what QDMA-style hardware supports and\n\
     what static kernel interfaces cannot express."
