lib/opendesc/intent.mli: Format P4 Semantic
