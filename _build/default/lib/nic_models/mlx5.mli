(** NVIDIA/Mellanox ConnectX-style model (mlx5).

    The 64-byte receive CQE exposes twelve metadata fields — the figure
    the paper quotes when noting that the kernel's XDP accessors cover
    only three of them. CQE compression replaces full CQEs with 8-byte
    mini-CQEs whose single payload slot carries either the RSS hash or
    the packet checksum, selected by the compression format
    configuration. *)

val source : string

val model : unit -> Model.t

val full_cqe_semantics : string list
(** The 12 metadata semantics of the full CQE, in layout order. *)

val xdp_exposed : string list
(** The 3 semantics the Linux XDP metadata accessors cover (hash,
    timestamp, VLAN) — the baseline of experiment C4. *)
