let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16_le = Bytes.get_uint16_le
let get_u16_be = Bytes.get_uint16_be
let set_u16_le = Bytes.set_uint16_le
let set_u16_be = Bytes.set_uint16_be

let get_u32_le = Bytes.get_int32_le
let get_u32_be = Bytes.get_int32_be
let set_u32_le = Bytes.set_int32_le
let set_u32_be = Bytes.set_int32_be

let get_u64_le = Bytes.get_int64_le
let get_u64_be = Bytes.get_int64_be
let set_u64_le = Bytes.set_int64_le
let set_u64_be = Bytes.set_int64_be

let mask w =
  assert (w >= 0 && w <= 64);
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let bytes_for_bits n = (n + 7) / 8

(* Bit fields are MSB-first within the byte stream: bit offset 0 is the top
   bit of byte 0, as in a P4 header definition read left to right. The
   accumulator collects exactly the field's bits per byte, so a 64-bit
   field spanning nine bytes cannot overflow the int64. *)
let get_bits b ~bit_off ~width =
  assert (width > 0 && width <= 64);
  let last_bit = bit_off + width - 1 in
  assert (bit_off >= 0 && last_bit < 8 * Bytes.length b);
  let first_byte = bit_off / 8 and last_byte = last_bit / 8 in
  let acc = ref 0L in
  for i = first_byte to last_byte do
    (* Field bits inside byte i, in stream coordinates. *)
    let hi = max bit_off (8 * i) and lo = min last_bit ((8 * i) + 7) in
    let nbits = lo - hi + 1 in
    let shift = 7 - (lo - (8 * i)) in
    let chunk = (get_u8 b i lsr shift) land ((1 lsl nbits) - 1) in
    acc := Int64.logor (Int64.shift_left !acc nbits) (Int64.of_int chunk)
  done;
  !acc

let set_bits b ~bit_off ~width v =
  assert (width > 0 && width <= 64);
  let last_bit = bit_off + width - 1 in
  assert (bit_off >= 0 && last_bit < 8 * Bytes.length b);
  let v = Int64.logand v (mask width) in
  let first_byte = bit_off / 8 and last_byte = last_bit / 8 in
  (* Write byte by byte, preserving bits outside the field. *)
  for i = first_byte to last_byte do
    (* Bits of [v] that land in byte [i]: byte i covers stream bits
       [8i, 8i+7]; stream bit k holds value bit (last_bit - k). *)
    let byte_lo_stream = (8 * i) + 7 in
    (* value bit index corresponding to the LSB of this byte (may be
       negative when the byte extends below the field). *)
    let v_at_byte_lsb = last_bit - byte_lo_stream in
    let chunk =
      if v_at_byte_lsb >= 0 then Int64.to_int (Int64.logand (Int64.shift_right_logical v v_at_byte_lsb) 0xffL)
      else Int64.to_int (Int64.logand (Int64.shift_left v (-v_at_byte_lsb)) 0xffL)
    in
    (* Mask of field bits inside this byte. *)
    let hi_in_byte = max (8 * i) bit_off - (8 * i) in
    let lo_in_byte = min byte_lo_stream last_bit - (8 * i) in
    let field_mask = ref 0 in
    for k = hi_in_byte to lo_in_byte do
      field_mask := !field_mask lor (1 lsl (7 - k))
    done;
    let old = get_u8 b i in
    set_u8 b i ((old land lnot !field_mask) lor (chunk land !field_mask))
  done

let hex_sub b ~pos ~len =
  let buf = Buffer.create (2 * len) in
  for i = pos to pos + len - 1 do
    Buffer.add_string buf (Printf.sprintf "%02x" (get_u8 b i))
  done;
  Buffer.contents buf

let hex b = hex_sub b ~pos:0 ~len:(Bytes.length b)
