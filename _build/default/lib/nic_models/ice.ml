let source =
  {|
/* Intel E810 (ice): legacy writeback or one of the Flexible Descriptor
   profiles programmed via the DDP package. Profile ids follow the
   datasheet's RXDID convention loosely: 1 = legacy, 2 = flex generic,
   4 = flex with timestamps. */
header ice_ctx_t {
  @values(1, 2, 4) bit<3> rxdid;
}

header ice_tx_desc_t {
  @semantic("buf_addr") bit<64> addr;
  @semantic("tx_len")   bit<16> len;
  bit<8>  cmd;
  @semantic("tx_l4_csum") bit<1> ol_csum;
  bit<7>  rsvd;
  @semantic("vlan")     bit<16> l2tag1;
  bit<16> pad;
}

header ice_legacy_cmpt_t {
  @semantic("pkt_len")  bit<16> length;
  @semantic("ip_checksum") bit<16> frag_csum;
  bit<16> status_err;
  @semantic("vlan")     bit<16> l2tag1;
}

header ice_flex_generic_cmpt_t {
  bit<8>  rxdid_echo;
  @semantic("l3_type")  bit<4>  l3_type;
  @semantic("l4_type")  bit<4>  l4_type;
  @semantic("pkt_len")  bit<16> length;
  @semantic("rss")      bit<32> rss_hash;
  @semantic("flow_id")  bit<32> flow_id;
  @semantic("vlan")     bit<16> l2tag1;
  @semantic("csum_ok")  bit<8>  xsum_status;
  bit<8>  status;
}

header ice_flex_tstamp_cmpt_t {
  bit<8>  rxdid_echo;
  bit<8>  status;
  @semantic("pkt_len")  bit<16> length;
  @semantic("rss")      bit<32> rss_hash;
  @semantic("wire_timestamp") bit<64> tstamp;
}

struct ice_meta_t {
  ice_legacy_cmpt_t       legacy;
  ice_flex_generic_cmpt_t generic;
  ice_flex_tstamp_cmpt_t  tstamp;
}

parser IceDescParser(desc_in d, in ice_ctx_t h2c_ctx, out ice_tx_desc_t desc_hdr) {
  state start { d.extract(desc_hdr); transition accept; }
}

@cmpt_deparser
control IceCmptDeparser(cmpt_out o, in ice_ctx_t ctx,
                        in ice_tx_desc_t desc_hdr, in ice_meta_t pipe_meta) {
  apply {
    if (ctx.rxdid == 1) {
      o.emit(pipe_meta.legacy);
    } else {
      if (ctx.rxdid == 2) {
        o.emit(pipe_meta.generic);
      } else {
        o.emit(pipe_meta.tstamp);
      }
    }
  }
}
|}

let model () =
  Model.make
    (Opendesc.Nic_spec.load_exn ~name:"ice-e810"
       ~kind:Opendesc.Nic_spec.Partially_programmable
       ~notes:"Flexible Descriptor profiles (DDP), selected per queue via RXDID"
       source)
