type store = {
  tenv : Typecheck.t;
  vals : (string list, Eval.value) Hashtbl.t;
  valid : (string list, unit) Hashtbl.t;
}

exception Runtime_error of string

exception Stop  (* accept / reject / return *)

let max_parser_steps = 256

let create tenv = { tenv; vals = Hashtbl.create 32; valid = Hashtbl.create 8 }

let set_int store path ?width v =
  Hashtbl.replace store.vals path (Eval.vint ?width v)

let get_int store path =
  match Hashtbl.find_opt store.vals path with
  | Some (Eval.VInt { v; _ }) -> Some v
  | _ -> None

let is_valid store path = Hashtbl.mem store.valid path

let env_of store : Eval.env =
 fun path ->
  match Hashtbl.find_opt store.vals path with
  | Some v -> Some v
  | None -> Typecheck.const_env store.tenv path

(* Replace [p.isValid()] subexpressions with boolean literals so the
   plain evaluator can decide mixed conditions. *)
let rec rewrite_isvalid store (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.ECall (Ast.EMember (base, meth), _, []) when meth.name = "isValid" -> (
      match Eval.path_of_expr base with
      | Some p -> Ast.EBool (is_valid store p)
      | None -> e)
  | Ast.EUnop (op, a) -> Ast.EUnop (op, rewrite_isvalid store a)
  | Ast.EBinop (op, a, b) ->
      Ast.EBinop (op, rewrite_isvalid store a, rewrite_isvalid store b)
  | Ast.ETernary (c, a, b) ->
      Ast.ETernary (rewrite_isvalid store c, rewrite_isvalid store a,
                    rewrite_isvalid store b)
  | Ast.ECast (t, a) -> Ast.ECast (t, rewrite_isvalid store a)
  | Ast.EInt _ | Ast.EBool _ | Ast.EString _ | Ast.EIdent _ | Ast.EMember _
  | Ast.EIndex _ | Ast.ECall _ ->
      e

let eval store e = Eval.eval (env_of store) (rewrite_isvalid store e)

let eval_bool store e =
  match eval store e with
  | Eval.VBool b -> b
  | Eval.VInt { v; _ } -> v <> 0L
  | Eval.VUnknown ->
      raise
        (Runtime_error
           (Printf.sprintf "condition %s is not concrete" (Pretty.expr_to_string e)))

let assign store scope lhs value =
  match Eval.path_of_expr lhs with
  | None -> ()
  | Some path ->
      (* Truncate to the destination width when it is known. *)
      let value =
        match (value, try Typecheck.type_of_expr store.tenv scope lhs with _ -> Typecheck.RVoid) with
        | Eval.VInt { v; _ }, Typecheck.RBit w when w <= 64 ->
            Eval.vint ~width:w (Eval.truncate ~width:w v)
        | v, _ -> v
      in
      Hashtbl.replace store.vals path value

(* ------------------------------------------------------------------ *)
(* Parser execution. *)

let run_parser store (pd : Typecheck.parser_def) ~packet ~len ~param =
  let scope =
    Typecheck.scope_of_params store.tenv pd.pr_params
  in
  let cursor = ref 0 in
  let bits_len = 8 * len in
  let exec_stmt (s : Ast.stmt) =
    match s with
    | Ast.SCall (Ast.ECall (Ast.EMember (base, meth), _, args)) -> (
        match (Eval.path_of_expr base, meth.name, args) with
        | Some [ b ], "extract", [ arg ] when b = param -> (
            match Typecheck.type_of_expr store.tenv scope arg with
            | Typecheck.RHeader h ->
                if !cursor + h.h_bits > bits_len then raise Stop (* truncated *)
                else begin
                  let dest =
                    match Eval.path_of_expr arg with
                    | Some p -> p
                    | None ->
                        raise
                          (Runtime_error
                             (Printf.sprintf "extract destination %s is not an lvalue"
                                (Pretty.expr_to_string arg)))
                  in
                  List.iter
                    (fun (f : Typecheck.field) ->
                      let v =
                        if f.f_bits > 64 then 0L
                        else
                          Packet.Bitops.get_bits packet
                            ~bit_off:(!cursor + f.f_bit_off) ~width:f.f_bits
                      in
                      Hashtbl.replace store.vals (dest @ [ f.f_name ])
                        (Eval.vint ~width:(min f.f_bits 64) v))
                    h.h_fields;
                  Hashtbl.replace store.valid dest ();
                  cursor := !cursor + h.h_bits
                end
            | ty ->
                raise
                  (Runtime_error
                     (Printf.sprintf "extract into non-header %s"
                        (Typecheck.rtyp_name ty))))
        | Some [ b ], "advance", [ arg ] when b = param -> (
            match eval store arg with
            | Eval.VInt { v; _ } -> cursor := !cursor + Int64.to_int v
            | _ -> raise (Runtime_error "advance amount is not concrete"))
        | _ -> ())
    | Ast.SAssign (lhs, rhs) -> assign store scope lhs (eval store rhs)
    | Ast.SVar (_, name, init) ->
        Hashtbl.replace store.vals [ name.name ]
          (match init with Some e -> eval store e | None -> Eval.VUnknown)
    | Ast.SConst (_, name, value) ->
        Hashtbl.replace store.vals [ name.name ] (eval store value)
    | Ast.SBlock _ | Ast.SIf _ ->
        (* Conditionals inside parser states are outside the supported
           subset; failing loudly beats silently skipping logic. *)
        raise (Runtime_error "conditional statements in parser states are not supported")
    | Ast.SCall _ | Ast.SReturn _ | Ast.SEmpty -> ()
  in
  let find_state name =
    List.find_opt (fun (s : Ast.parser_state) -> s.st_name.name = name) pd.pr_states
  in
  let keyset_matches value (k : Ast.keyset) =
    match k with
    | Ast.KDefault -> true
    | Ast.KExpr e -> (
        match eval store e with
        | Eval.VInt { v; _ } -> Int64.equal v value
        | _ -> raise (Runtime_error "keyset is not concrete"))
    | Ast.KMask (e, m) -> (
        match (eval store e, eval store m) with
        | Eval.VInt { v; _ }, Eval.VInt { v = mask; _ } ->
            Int64.equal (Int64.logand value mask) (Int64.logand v mask)
        | _ -> raise (Runtime_error "mask keyset is not concrete"))
  in
  let rec step name count =
    if count > max_parser_steps then raise (Runtime_error "parser step limit");
    if name = "accept" || name = "reject" then ()
    else
      match find_state name with
      | None -> raise (Runtime_error (Printf.sprintf "unknown state %s" name))
      | Some st -> (
          List.iter exec_stmt st.st_stmts;
          match st.st_trans with
          | Ast.TDirect next -> step next.name (count + 1)
          | Ast.TSelect ([ scrutinee ], cases) -> (
              match eval store scrutinee with
              | Eval.VInt { v; _ } -> (
                  match
                    List.find_opt
                      (fun (c : Ast.select_case) ->
                        match c.keysets with
                        | [ k ] -> keyset_matches v k
                        | _ -> false)
                      cases
                  with
                  | Some c -> step c.next.name (count + 1)
                  | None -> () (* implicit reject *))
              | _ ->
                  raise
                    (Runtime_error
                       (Printf.sprintf "select(%s) is not concrete"
                          (Pretty.expr_to_string scrutinee))))
          | Ast.TSelect _ -> raise (Runtime_error "multi-scrutinee select"))
  in
  try step "start" 0 with Stop -> ()

(* ------------------------------------------------------------------ *)
(* Control execution. *)

let run_control store (cd : Typecheck.control_def) =
  let scope = Typecheck.scope_of_control store.tenv cd in
  let rec exec_block stmts = List.iter exec_stmt stmts
  and exec_stmt (s : Ast.stmt) =
    match s with
    | Ast.SAssign (lhs, rhs) -> assign store scope lhs (eval store rhs)
    | Ast.SIf (c, then_b, else_b) ->
        if eval_bool store c then exec_block then_b
        else Option.iter exec_block else_b
    | Ast.SBlock b -> exec_block b
    | Ast.SCall (Ast.ECall (Ast.EMember (base, meth), _, [])) -> (
        match (Eval.path_of_expr base, meth.name) with
        | Some p, "setValid" -> Hashtbl.replace store.valid p ()
        | Some p, "setInvalid" -> Hashtbl.remove store.valid p
        | _ -> ())
    | Ast.SCall _ -> ()
    | Ast.SVar (_, name, init) ->
        Hashtbl.replace store.vals [ name.name ]
          (match init with Some e -> eval store e | None -> Eval.VUnknown)
    | Ast.SConst (_, name, value) ->
        Hashtbl.replace store.vals [ name.name ] (eval store value)
    | Ast.SReturn _ -> raise Stop
    | Ast.SEmpty -> ()
  in
  try exec_block cd.ct_body with Stop -> ()
