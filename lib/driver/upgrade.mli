(** Hitless contract evolution: live hot-swap of a running datapath.

    The paper's end state (§6): a NIC's metadata contract is versioned
    data, so a firmware bump becomes a {e classified, certified,
    packet-accounted} transition instead of a driver rebuild and a
    maintenance window. This module is the control plane over
    {!Parallel.hot_swap}'s epoch protocol: given a running
    {!Mq.t}/{!Parallel} datapath on revision A and the P4 source of
    revision B, it

    - classifies the diff with the symbolic evolution checker
      ({!Opendesc.Nic_diff.check}), then narrows the verdict to the
      {e deployment}: an entry only matters here if it touches the
      active completion path and a semantic this deployment's intent
      actually serves (a globally-Breaking removal on a path we never
      selected is locally Transparent);
    - executes the protocol the class demands — [Transparent] applies
      at the next quiescent point with no proof obligation,
      [Recompile] recompiles revision B in the background, demands a
      translation-validation certificate {e fresh against the new
      contract hash} ({!Opendesc.Cache.certificate_status}) and
      refuses the swap (datapath keeps serving rev A) on a stale or
      missing certificate, [Breaking] drains every in-flight
      completion and quarantines the transition — the remainder of the
      stream is withheld, every packet accounted;
    - reconciles {!Fault.counters} exactly across the epoch:
      [delivered + quarantined = rx_accepted + duplicates] and
      [lost = 0].

    Certificate identity follows deployment identity: the new revision
    is {e branded} with the running device's NIC name before any cache
    query, so the certificate held for the deployment (proved against
    rev A's contract) is correctly judged stale for rev B's hash.

    Two engines produce the same {!outcome}: a single-threaded
    interleaved engine ([domains = 1], deterministic to the byte for a
    given seed — what the CLI golden pins) and the domain-parallel
    epoch engine ({!Parallel.hot_swap}) for [domains > 1]. *)

(** Certificate-gate failure drills (the [certify --inject] lineage):
    force the Recompile protocol into each refusal mode without needing
    a genuinely broken toolchain. *)
type drill =
  | Drill_stale
      (** the deployment holds rev A's certificate only — rev B is
          never certified, so the gate sees [held ≠ current] *)
  | Drill_missing
      (** no certificate was ever minted for this deployment *)
  | Drill_inject of Opendesc_analysis.Certify.mutation
      (** rev B's accessor plan is mutated before validation, so
          certification itself fails (OD021–OD023) *)

val drill_of_string : string -> drill option
(** ["stale" | "missing" | "inject:<mutation>"]. *)

val drill_name : drill -> string

(** What the certificate gate concluded. Hashes are hex contract
    digests ({!Opendesc.Cache.contract_hash_of} — stable across runs). *)
type cert_verdict =
  | Cv_not_required  (** no effective Recompile-class entry *)
  | Cv_fresh of string  (** certificate proved against this hash *)
  | Cv_stale of { held : string; current : string }
  | Cv_missing of string  (** no certificate for [current] *)
  | Cv_failed of string list
      (** certification ran and failed — diagnostic codes *)

val cert_verdict_name : cert_verdict -> string
(** Stable slug:
    ["not_required" | "fresh" | "stale" | "missing" | "failed"]. *)

type action =
  | Applied  (** the datapath now serves revision B *)
  | Refused of string  (** still serving revision A; the reason *)
  | Quarantined
      (** drained, stopped, remainder withheld (Breaking class) *)

val action_name : action -> string

type outcome = {
  o_nic : string;  (** the running deployment's NIC name *)
  o_from : string;  (** old revision name *)
  o_to : string;  (** new revision name (pre-branding) *)
  o_intent : string list;  (** served semantics, sorted *)
  o_full_class : Opendesc_analysis.Evolution.klass;
      (** the global classification over the whole interface *)
  o_class : Opendesc_analysis.Evolution.klass;
      (** the deployment-effective class ({!effective_entries}) *)
  o_entries : int;  (** total report entries *)
  o_effective : int;  (** entries surviving the deployment filter *)
  o_active_path : int;  (** rev A completion path index in service *)
  o_cert : cert_verdict;
  o_action : action;
  o_dry : bool;
  o_epoch : int;  (** 1 after a successful swap, else 0 *)
  o_domains : int;
  o_queues : int;
  o_pkts : int;  (** packets offered (workload length) *)
  o_at : int;  (** packets offered before the swap point *)
  o_inflight : int;  (** completions pending at the quiesce point *)
  o_pre_delivered : int;  (** delivered under epoch 0 *)
  o_post_delivered : int;  (** delivered under epoch 1 *)
  o_delivered : int;
  o_quarantined : int;  (** contract violators withheld from the stack *)
  o_accepted : int;  (** injections the devices accepted *)
  o_duplicates : int;
  o_withheld : int;  (** never offered ([Quarantined] only) *)
  o_drops : int;  (** device-side ring-full drops *)
  o_lost : int;
      (** [accepted + duplicates - delivered - quarantined] — the
          zero-packet-loss acceptance number, must be 0 *)
  o_reconciled : bool;  (** {!Fault.reconciles} on the summed counters *)
  o_torn : int;  (** torn-plan oracle violations — must be 0 *)
  o_upgrade_errors : int;  (** per-device {!Device.upgrade} refusals *)
  o_wall_s : float;  (** whole run (not in the JSON: nondeterministic) *)
  o_latency_s : float;  (** quiesce request → every worker on epoch 1 *)
  o_pause_s : float;
      (** producer quiesce pause: injection halted from the quiesce
          request until the post-swap stream resumed (for a quarantine,
          until the verdict withheld the remainder). In the JSON as
          [pause_s]; the live_upgrade bench bounds it below 100 ms at
          4 domains. 0 on a dry run. *)
  o_faults : Fault.counters;  (** summed per-queue counters *)
  o_post_pairs : (bytes * bytes) list array option;
      (** with [~collect_post:true]: per queue, epoch-1
          (packet, completion) pairs in delivery order — re-decoded by
          the rev-B reference reader in the acceptance test *)
  o_compiled_new : Opendesc.Compile.t option;
      (** rev B's compilation when one was produced (tests re-decode
          [o_post_pairs] against it) *)
}

val effective_entries :
  served:string list ->
  active:int ->
  Opendesc_analysis.Evolution.report ->
  Opendesc_analysis.Evolution.entry list
(** The deployment filter: keep an entry iff its old-path attribution
    is absent or equals [active], {e and} its semantic is absent or a
    member of [served]. The effective class is the max over the
    survivors ([Transparent] when none survive). *)

val run :
  ?queues:int ->
  ?domains:int ->
  ?batch:int ->
  ?pkts:int ->
  ?at:int ->
  ?seed:int64 ->
  ?plan:Fault.plan ->
  ?alpha:float ->
  ?drill:drill ->
  ?collect_post:bool ->
  intent:Opendesc.Intent.t ->
  old_spec:Opendesc.Nic_spec.t ->
  new_spec:Opendesc.Nic_spec.t ->
  unit ->
  (outcome, string) result
(** Stand up a [queues]-queue datapath on [old_spec] under [intent],
    stream a seeded Imix workload through the fault layer ([plan]
    defaults to {!Fault.zero_plan}[ seed] — wrapped either way, so the
    counters always reconcile), raise the swap at packet [at] (default
    [pkts / 2]) and drive the protocol above. [domains = 1] (default)
    runs the deterministic interleaved engine; [domains > 1] delegates
    to {!Parallel.hot_swap}. Defaults: [queues = 4], [batch = 32],
    [pkts = 4096], [seed = 42]. Errors are pre-flight only (rev A
    fails to compile, device creation fails); every post-flight
    condition is an {!outcome}. *)

val dry_run :
  ?alpha:float ->
  ?drill:drill ->
  intent:Opendesc.Intent.t ->
  old_spec:Opendesc.Nic_spec.t ->
  new_spec:Opendesc.Nic_spec.t ->
  unit ->
  (outcome, string) result
(** Classification and certificate gate only — no datapath, no
    packets. [o_action] is what {!run} {e would} do; datapath counters
    are zero and [o_dry] is [true]. *)

val to_json : outcome -> string
(** One-line JSON document, schema ["opendesc-upgrade-2"]. Only
    deterministic fields (no wall-clock or latency times), plus the
    producer quiesce pause [pause_s] — the one timing the interface
    promises (the golden rules filter it; dry runs report 0). *)

val pp : Format.formatter -> outcome -> unit
(** Human-readable multi-line report. *)
