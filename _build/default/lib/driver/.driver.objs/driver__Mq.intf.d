lib/driver/mq.mli: Device Nic_models Opendesc Packet
