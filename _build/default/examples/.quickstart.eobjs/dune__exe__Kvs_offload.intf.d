examples/kvs_offload.mli:
