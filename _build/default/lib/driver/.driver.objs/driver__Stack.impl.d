lib/driver/stack.ml: Bytes Char Cost Device Int64 Packet Softnic Stats
