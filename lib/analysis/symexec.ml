(* Symbolic execution of a completion deparser over the context
   domains: abstract expression evaluation in Absdom, path-condition
   refinement at branches, and a decision-tree walk of the Dep_ir that
   classifies every syntactic completion path as feasible or proved
   infeasible.

   Where Dep_ir.run executes the body under ONE concrete context
   assignment, [exec] covers ALL of them in a single walk: context
   fields start at the tightest abstraction of their enumerated domain
   and are refined by each branch taken, so a leaf whose path condition
   collapses to bottom is unreachable under every configuration — a
   proof, not a sampling result. *)

module A = Absdom

(* ------------------------------------------------------------------ *)
(* Environments: a base lookup (context domains, constants, runtime
   header fields) plus refinements and locals accumulated on the walk. *)

type env = { e_base : string list -> A.t; e_over : (string list * A.t) list }

let lookup env p =
  match List.assoc_opt p env.e_over with
  | Some v -> v
  | None -> env.e_base p

let set env p v = { env with e_over = (p, v) :: List.remove_assoc p env.e_over }

let header_paths prefix (h : P4.Typecheck.header_def) =
  List.map
    (fun (f : P4.Typecheck.field) -> (prefix @ [ f.f_name ], f.f_bits))
    h.h_fields

(* Abstractions for every field reachable from a parameter: headers
   directly, headers nested one level inside structs (pipeline
   metadata), recursively through struct members. *)
let rec rtyp_paths prefix (t : P4.Typecheck.rtyp) =
  match t with
  | P4.Typecheck.RHeader h -> header_paths prefix h
  | P4.Typecheck.RStruct s ->
      List.concat_map (fun (n, t) -> rtyp_paths (prefix @ [ n ]) t) s.s_fields
  | P4.Typecheck.RBit w -> [ (prefix, w) ]
  | _ -> []

let base_env ~(consts : P4.Eval.env)
    ~(ctx : (P4.Typecheck.cparam * P4.Typecheck.header_def) option)
    ~(params : P4.Typecheck.cparam list) () : string list -> A.t =
  let tbl : (string list, A.t) Hashtbl.t = Hashtbl.create 32 in
  (* runtime fields: any value of their declared width *)
  List.iter
    (fun (p : P4.Typecheck.cparam) ->
      List.iter
        (fun (path, w) -> Hashtbl.replace tbl path (A.of_width w))
        (rtyp_paths [ p.c_name ] p.c_typ))
    params;
  (* context fields override: the enumerated domain, widthless to
     mirror Ctxdom.env_of (concrete context values carry no width) *)
  (match ctx with
  | None -> ()
  | Some (p, h) -> (
      match Ctxdom.domains h with
      | Ok doms ->
          List.iter
            (fun (fname, vs) ->
              Hashtbl.replace tbl [ p.c_name; fname ] (A.of_values vs))
            doms
      | Error _ ->
          (* unbounded configuration space: fall back to the field's
             range (still widthless, matching the concrete env) *)
          List.iter
            (fun (f : P4.Typecheck.field) ->
              Hashtbl.replace tbl
                [ p.c_name; f.f_name ]
                (A.of_range ~lo:0L
                   ~hi:
                     (if f.f_bits >= 64 then -1L
                      else Int64.sub (Int64.shift_left 1L f.f_bits) 1L)
                   ()))
            h.h_fields));
  fun path ->
    match Hashtbl.find_opt tbl path with
    | Some v -> v
    | None -> (
        match consts path with
        | Some (P4.Eval.VInt { v; width }) -> A.const ?width v
        | Some (P4.Eval.VBool b) -> A.of_bool b
        | Some P4.Eval.VUnknown | None -> A.Top)

(* ------------------------------------------------------------------ *)
(* Abstract expression evaluation, mirroring P4.Eval.eval. *)

let rec eval env (e : P4.Ast.expr) : A.t =
  match e with
  | P4.Ast.EInt { value; width; _ } -> A.const ?width value
  | P4.Ast.EBool b -> A.of_bool b
  | P4.Ast.EString _ -> A.Top
  | P4.Ast.EIdent _ | P4.Ast.EMember _ -> (
      match P4.Eval.path_of_expr e with Some p -> lookup env p | None -> A.Top)
  | P4.Ast.EIndex _ | P4.Ast.ECall _ -> A.Top
  | P4.Ast.EUnop (op, a) -> A.unop op (eval env a)
  | P4.Ast.EBinop (P4.Ast.LAnd, a, b) -> (
      match A.truth (eval env a) with
      | A.BFalse -> A.Bool A.BFalse
      | A.BTrue -> A.Bool (A.truth (eval env b))
      | A.BMaybe -> (
          match A.truth (eval env b) with
          | A.BFalse -> A.Bool A.BFalse
          | _ -> A.Bool A.BMaybe))
  | P4.Ast.EBinop (P4.Ast.LOr, a, b) -> (
      match A.truth (eval env a) with
      | A.BTrue -> A.Bool A.BTrue
      | A.BFalse -> A.Bool (A.truth (eval env b))
      | A.BMaybe -> (
          match A.truth (eval env b) with
          | A.BTrue -> A.Bool A.BTrue
          | _ -> A.Bool A.BMaybe))
  | P4.Ast.EBinop (op, a, b) -> A.binop op (eval env a) (eval env b)
  | P4.Ast.ETernary (c, t, f) -> (
      match A.truth (eval env c) with
      | A.BTrue -> eval env t
      | A.BFalse -> eval env f
      | A.BMaybe -> A.join (eval env t) (eval env f))
  | P4.Ast.ECast (P4.Ast.TBit we, a) -> (
      match A.singleton (eval env we) with
      | Some w -> A.cast_bit (Int64.to_int w) (eval env a)
      | None -> A.Top)
  | P4.Ast.ECast (_, a) -> eval env a

let eval_pred env e = A.truth (eval env e)

(* ------------------------------------------------------------------ *)
(* Path-condition refinement: assume a predicate holds (or not) and
   narrow the abstractions of the paths it constrains. Returns [None]
   when the assumption is contradictory — the branch side is infeasible
   even though the predicate alone did not decide. *)

let refine env p narrowed =
  match A.meet (lookup env p) narrowed with
  | A.Bot -> None
  | v -> Some (set env p v)

let max_u64 = -1L

let rec assume env (e : P4.Ast.expr) (polarity : bool) : env option =
  let num_cmp l r =
    (* (path, singleton) for a comparison with one refinable side *)
    match (P4.Eval.path_of_expr l, A.singleton (eval env r)) with
    | Some p, Some c -> Some (p, c)
    | _ -> None
  in
  match e with
  | P4.Ast.EUnop (P4.Ast.LNot, a) -> assume env a (not polarity)
  | P4.Ast.EBinop (P4.Ast.LAnd, a, b) ->
      if polarity then Option.bind (assume env a true) (fun env -> assume env b true)
      else Some env
  | P4.Ast.EBinop (P4.Ast.LOr, a, b) ->
      if polarity then Some env
      else Option.bind (assume env a false) (fun env -> assume env b false)
  | P4.Ast.EBinop (P4.Ast.Neq, l, r) -> assume env (P4.Ast.EBinop (P4.Ast.Eq, l, r)) (not polarity)
  | P4.Ast.EBinop (P4.Ast.Eq, l, r) -> (
      let one p c =
        if polarity then refine env p (A.const c)
        else
          match A.exclude c (lookup env p) with
          | A.Bot -> None
          | v -> Some (set env p v)
      in
      match num_cmp l r with
      | Some (p, c) -> one p c
      | None -> ( match num_cmp r l with Some (p, c) -> one p c | None -> Some env))
  | P4.Ast.EBinop (((P4.Ast.Lt | P4.Ast.Le | P4.Ast.Gt | P4.Ast.Ge) as op), l, r) -> (
      (* normalise to path-on-the-left *)
      let flipped =
        match op with
        | P4.Ast.Lt -> P4.Ast.Gt
        | P4.Ast.Le -> P4.Ast.Ge
        | P4.Ast.Gt -> P4.Ast.Lt
        | P4.Ast.Ge -> P4.Ast.Le
        | _ -> op
      in
      let effective =
        match num_cmp l r with
        | Some pc -> Some (op, pc)
        | None -> (
            match num_cmp r l with Some pc -> Some (flipped, pc) | None -> None)
      in
      match effective with
      | None -> Some env
      | Some (op, (p, c)) ->
          (* the assumed relation after polarity *)
          let op =
            if polarity then op
            else
              match op with
              | P4.Ast.Lt -> P4.Ast.Ge
              | P4.Ast.Le -> P4.Ast.Gt
              | P4.Ast.Gt -> P4.Ast.Le
              | P4.Ast.Ge -> P4.Ast.Lt
              | _ -> op
          in
          let narrowed =
            match op with
            | P4.Ast.Lt ->
                if c = 0L then A.Bot else A.of_range ~lo:0L ~hi:(Int64.sub c 1L) ()
            | P4.Ast.Le -> A.of_range ~lo:0L ~hi:c ()
            | P4.Ast.Gt ->
                if c = max_u64 then A.Bot
                else A.of_range ~lo:(Int64.add c 1L) ~hi:max_u64 ()
            | P4.Ast.Ge -> A.of_range ~lo:c ~hi:max_u64 ()
            | _ -> A.Top
          in
          if narrowed = A.Bot then None else refine env p narrowed)
  | _ -> (
      (* bare truth test of a bit<_> flag: ctx.flag means ctx.flag != 0 *)
      match P4.Eval.path_of_expr e with
      | Some p ->
          if polarity then (
            match A.exclude 0L (lookup env p) with
            | A.Bot -> None
            | v -> Some (set env p v))
          else refine env p (A.const 0L)
      | None -> Some env)

(* ------------------------------------------------------------------ *)
(* Decision-tree walk. *)

type leaf = {
  lf_emit_ids : int list;  (** emit sites reached, in order *)
  lf_total_bits : int;
  lf_decisions : (int * bool) list;  (** (branch site, side taken) *)
  lf_feasible : bool;  (** path condition not proved unsatisfiable *)
}

type result = {
  sx_leaves : leaf list;  (** every syntactic completion path *)
  sx_verdicts : (int * A.abool list) list;
      (** per branch site: the predicate's abstract verdict at each
          occurrence reached along a feasible prefix *)
  sx_pruned : int;  (** leaves proved infeasible *)
}

let feasible_mask r = List.map (fun l -> l.lf_feasible) r.sx_leaves

type state = {
  st_env : env;
  st_emits : int list;  (* reversed *)
  st_bits : int;
  st_decisions : (int * bool) list;  (* reversed *)
  st_feasible : bool;
  st_stopped : bool;
}

let exec ~(base : string list -> A.t) (ir : Dep_ir.t) : result =
  let verdicts : (int, A.abool list ref) Hashtbl.t = Hashtbl.create 8 in
  let record id v =
    match Hashtbl.find_opt verdicts id with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add verdicts id (ref [ v ])
  in
  let rec exec_nodes sts nodes = List.fold_left exec_node sts nodes
  and exec_node sts node = List.concat_map (fun st -> exec_one st node) sts
  and exec_one st node =
    if st.st_stopped then [ st ]
    else
      match node with
      | Dep_ir.NEmit em ->
          [
            {
              st with
              st_emits = em.Dep_ir.e_id :: st.st_emits;
              st_bits = st.st_bits + em.Dep_ir.e_header.h_bits;
            };
          ]
      | Dep_ir.NIf { i_id; i_cond; i_then; i_else } ->
          let v = eval_pred st.st_env i_cond in
          if st.st_feasible then record i_id v;
          let side taken nodes =
            let feasible, env =
              if not st.st_feasible then (false, st.st_env)
              else
                match v with
                | A.BTrue -> (taken, st.st_env)
                | A.BFalse -> (not taken, st.st_env)
                | A.BMaybe -> (
                    match assume st.st_env i_cond taken with
                    | Some env -> (true, env)
                    | None -> (false, st.st_env))
            in
            exec_nodes
              [
                {
                  st with
                  st_env = env;
                  st_decisions = (i_id, taken) :: st.st_decisions;
                  st_feasible = feasible;
                };
              ]
              nodes
          in
          side true i_then @ side false i_else
      | Dep_ir.NAssign (l, r) -> (
          match P4.Eval.path_of_expr l with
          | Some p -> [ { st with st_env = set st.st_env p (eval st.st_env r) } ]
          | None -> [ st ])
      | Dep_ir.NDecl (n, init) ->
          let v = match init with Some e -> eval st.st_env e | None -> A.Top in
          [ { st with st_env = set st.st_env [ n ] v } ]
      | Dep_ir.NReturn -> [ { st with st_stopped = true } ]
      | Dep_ir.NOther -> [ st ]
  in
  let init =
    {
      st_env = { e_base = base; e_over = [] };
      st_emits = [];
      st_bits = 0;
      st_decisions = [];
      st_feasible = true;
      st_stopped = false;
    }
  in
  let finals = exec_nodes [ init ] ir.Dep_ir.ir_nodes in
  let leaves =
    List.map
      (fun st ->
        {
          lf_emit_ids = List.rev st.st_emits;
          lf_total_bits = st.st_bits;
          lf_decisions = List.rev st.st_decisions;
          lf_feasible = st.st_feasible;
        })
      finals
  in
  {
    sx_leaves = leaves;
    sx_verdicts =
      List.filter_map
        (fun ((id, _) : int * P4.Ast.expr) ->
          match Hashtbl.find_opt verdicts id with
          | Some l -> Some (id, List.rev !l)
          | None -> None)
        ir.Dep_ir.ir_ifs;
    sx_pruned = List.length (List.filter (fun l -> not l.lf_feasible) leaves);
  }
