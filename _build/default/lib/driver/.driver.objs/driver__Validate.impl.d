lib/driver/validate.ml: Device Format Int64 List Opendesc Option Packet Printf Softnic String
