(** Multi-queue devices with on-card RSS steering.

    The paper (§3): "applications might use multiple OpenDesc instances
    with different intents to obtain different queues tailored for
    different kind[s] of traffic." A multi-queue device is an array of
    independently-configured queues — each with its own completion layout
    negotiated by its own compilation — behind one steering function: the
    RSS hash of the flow picks the queue (hashless frames go to queue 0),
    so a connection's packets always share a queue, RSS-style. *)

type t

val create :
  ?queue_depth:int ->
  configs:Opendesc.Context.assignment array ->
  (unit -> Nic_models.Model.t) ->
  (t, string) result
(** One queue per config. [model] is a thunk because every queue gets its
    own device instance of the same NIC (sharing the steering key). *)

val create_exn :
  ?queue_depth:int ->
  configs:Opendesc.Context.assignment array ->
  (unit -> Nic_models.Model.t) ->
  t

val queues : t -> int

val queue : t -> int -> Device.t
(** The underlying device of one queue (drain it with
    {!Device.rx_consume}). *)

val steer : ?view:Packet.Pkt.view -> t -> Packet.Pkt.t -> int
(** The queue the steering function selects (Toeplitz over the flow,
    modulo queue count; 0 for unhashable frames). Pass [?view] when the
    caller already holds the parsed view — the injection hot path — to
    skip the re-parse. *)

val rx_inject : ?view:Packet.Pkt.view -> t -> Packet.Pkt.t -> bool
(** Inject via the steering function ([?view] as in {!steer}). *)

type steer_cache
(** A flow -> queue cache in front of the Toeplitz hash — the software
    twin of a NIC's RSS indirection table. *)

val make_steer_cache : ?size:int -> unit -> steer_cache
(** Default initial size 256 (flows, not packets). *)

val steer_cached : t -> steer_cache -> Packet.Pkt.t -> int
(** {!steer} through the cache: parses the packet, hashes only on a
    cache miss. Identical queue choice to {!steer} — the hash is a pure
    function of the flow — so cached and uncached steering interleave
    safely. Unhashable frames bypass the cache (queue 0). *)

val rx_counts : t -> int array
(** Packets delivered per queue. *)

val bursts : ?capacity:int -> t -> Device.burst array
(** One reusable burst buffer per queue (see {!Device.burst_create}). *)

val rx_consume_batch : t -> int -> Device.burst -> int
(** Harvest one queue into its burst buffer. *)

val drain_batched : t -> Device.burst array -> f:(int -> Device.burst -> unit) -> int
(** One polling sweep: harvest every queue into its burst (as created by
    {!bursts}) and call [f queue burst] for each non-empty harvest.
    Returns the total packets harvested across queues.

    @raise Invalid_argument when the burst array's length does not match
    the queue count — loud in release builds too, unlike an [assert]. *)

(** {1 Chaos datapath}

    The fault-injected twin of the batched datapath: wrap every queue in
    a {!Fault.t} (same plan, per-queue seeds), inject through the fault
    layer and drain through its recovery path. With {!Fault.zero_plan}
    this is byte-identical to {!rx_inject} + {!drain_batched}. *)

val wrap_chaos : ?quarantine_depth:int -> plan:Fault.plan -> t -> Fault.t array
(** One fault wrapper per queue, seeded with the queue id (see
    {!Fault.wrap}). *)

val rx_inject_chaos :
  ?view:Packet.Pkt.view -> t -> Fault.t array -> Packet.Pkt.t -> bool
(** Steer (exactly as {!rx_inject}) and inject through the queue's fault
    wrapper.
    @raise Invalid_argument on a wrapper-array/queue-count mismatch. *)

val drain_chaos :
  t -> Fault.t array -> Device.burst array -> f:(int -> Device.burst -> unit) -> int
(** One polling sweep through {!Fault.harvest}: each burst holds only
    {e validated} completions (violators are quarantined). Returns the
    total delivered this sweep.
    @raise Invalid_argument on array/queue-count mismatches. *)

val drain_chaos_all :
  t -> Fault.t array -> Device.burst array -> f:(int -> Device.burst -> unit) -> int
(** End-of-stream drain: flush deferred (reordered) completions, then
    sweep until every queue ring is dry — retrying stuck queues (bounded
    kicks per sweep) and discounting fully-quarantined bursts. Returns
    the total delivered. *)
