(** Application intents (Figure 5 of the paper).

    An intent is the ordered set of semantics an application wants
    delivered with each received packet, declared as a P4 header whose
    fields carry [@semantic] annotations. Fields may additionally carry
    [@cost(<cycles>)] to register a brand-new semantic together with its
    software-synthesis cost, or [@cost(inf)] for hardware-only features.
    The header itself may carry [@budget(<cycles>)]: the worst-case
    decode cost the application accepts per packet, gated statically by
    [Opendesc_analysis.Costbound] (OD025). *)

type field = {
  if_name : string;  (** field name in the intent header *)
  if_semantic : string;
  if_width : int;
}

type t = {
  name : string;  (** intent header name *)
  fields : field list;
  budget : float option;  (** [@budget(<cycles>)] decode-cost envelope *)
}

val required : t -> string list
(** The requested semantic set Req, in declaration order. *)

val make : ?name:string -> ?budget:float -> (string * int) list -> t
(** [make [(semantic, width); ...]] builds an intent programmatically;
    field names are the semantic names. *)

val of_header : P4.Typecheck.header_def -> t
(** Interpret a checked header as an intent: fields without a [@semantic]
    annotation are ignored (they are application-private scratch space). *)

val of_program : ?header:string -> P4.Typecheck.t -> (t, string) result
(** Find the intent header in a checked program: [header] if given,
    otherwise the unique header carrying an [@intent] annotation,
    otherwise the unique header whose name contains ["intent"]. *)

val of_source : ?header:string -> string -> (t, string) result
(** Parse + check + extract in one step (prepends the prelude). *)

val register_custom_semantics :
  Semantic.t -> P4.Typecheck.header_def -> (unit, string) result
(** Register every intent field that names a semantic unknown to the
    registry, using its [@cost] annotation. Errors if a new semantic
    lacks [@cost]. *)

val canonical : t -> string
(** A stable, injective textual form of the intent ("name{field=sem:w;…}",
    declaration order preserved — order is semantically significant: it
    fixes the binding order of a compilation). Equal intents have equal
    canonical forms; used as part of the compile-cache key. *)

val to_p4 : t -> string
(** Render back to a P4 intent header (for reports and tests). *)

val pp : Format.formatter -> t -> unit
