(** The compiler's optimization problem (§4 step 3, Eq. 1).

    Choose the completion path p* minimising

    {v  Σ_{s ∈ Req \ Prov(p)} w(s)   +   α · Size(p)  v}

    where the first term is the SoftNIC cost of emulating missing
    semantics and the second the DMA completion footprint. A missing
    semantic with w(s) = ∞ makes a path infeasible; if every path is
    infeasible the program is rejected as unsatisfiable. *)

type scored = {
  s_path : Path.t;
  s_missing : string list;  (** Req \ Prov(p), in intent order *)
  s_softnic_cost : float;  (** Σ w(s), possibly [infinity] *)
  s_dma_cost : float;  (** α · Size(p) *)
  s_total : float;
}

type outcome = {
  chosen : scored;
  ranked : scored list;  (** every path, best first (chosen is the head) *)
  alpha : float;
}

type error =
  | No_paths
  | Unsatisfiable of string list
      (** semantics with no hardware path and no software implementation *)

val error_to_string : error -> string

val default_alpha : float
(** 2.0 cycles per completion byte — the nominal PCIe/cache cost the DMA
    footprint term charges. *)

val score : Semantic.t -> alpha:float -> Intent.t -> Path.t -> scored

val choose :
  ?alpha:float -> Semantic.t -> Intent.t -> Path.t list -> (outcome, error) result
(** Deterministic: ties break towards smaller completions, then lower
    path index. *)
