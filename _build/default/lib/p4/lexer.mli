(** Hand-written lexer for the P4 subset. *)

exception Error of string * Loc.pos
(** Lexical error with position. *)

val tokenize : string -> Token.t list
(** Whole-input tokenization; the result always ends with an [Eof] token.
    Skips [//] and [/* */] comments and whitespace.
    @raise Error on malformed input (unterminated comment/string,
    bad character, malformed number). *)
