lib/opendesc/codegen_c.ml: Buffer Descparser List Path Printf String
