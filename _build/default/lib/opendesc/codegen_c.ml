let ctype_for bits =
  if bits <= 8 then "uint8_t"
  else if bits <= 16 then "uint16_t"
  else if bits <= 32 then "uint32_t"
  else "uint64_t"

let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') s

let accessor_name ~nic field = Printf.sprintf "opendesc_%s_rx_%s" (sanitize nic) (sanitize field)

(* A byte-aligned field becomes explicit shifted loads (MSB-first, matching
   the P4 header order the device serialises with). *)
let aligned_body ~byte ~bytes_n =
  let loads =
    List.init bytes_n (fun i ->
        let shift = 8 * (bytes_n - 1 - i) in
        if shift = 0 then Printf.sprintf "(uint64_t)cmpt[%d]" (byte + i)
        else Printf.sprintf "((uint64_t)cmpt[%d] << %d)" (byte + i) shift)
  in
  String.concat " | " loads

let field_accessor ~nic (f : Path.lfield) =
  let name = accessor_name ~nic f.l_name in
  let ret = ctype_for f.l_bits in
  let sem =
    match f.l_semantic with
    | Some s -> Printf.sprintf " /* @semantic(%s) */" s
    | None -> ""
  in
  if f.l_bit_off mod 8 = 0 && f.l_bits mod 8 = 0 then
    Printf.sprintf
      "static inline %s %s(const uint8_t *cmpt)%s {\n    return (%s)(%s);\n}\n" ret name
      sem ret
      (aligned_body ~byte:(f.l_bit_off / 8) ~bytes_n:(f.l_bits / 8))
  else
    Printf.sprintf
      "static inline %s %s(const uint8_t *cmpt)%s {\n\
      \    return (%s)opendesc_get_bits(cmpt, %d, %d);\n\
       }\n"
      ret name sem ret f.l_bit_off f.l_bits

let get_bits_helper =
  {|/* Generic MSB-first bit-field extractor for unaligned fields. */
static inline uint64_t opendesc_get_bits(const uint8_t *p, unsigned bit_off,
                                         unsigned width) {
    uint64_t acc = 0;
    unsigned first = bit_off / 8, last = (bit_off + width - 1) / 8;
    for (unsigned i = first; i <= last; i++)
        acc = (acc << 8) | p[i];
    unsigned slack = (last + 1) * 8 - (bit_off + width);
    acc >>= slack;
    return width == 64 ? acc : (acc & ((1ULL << width) - 1));
}
|}

let datapath ~nic ~(path : Path.t) ~requested ~missing ~config ~tx_format =
  let n = sanitize nic in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "/* Generated minimalist driver datapath — OpenDesc compiler output.\n";
  add " * NIC: %s. Only the variable portion of the driver is generated;\n" nic;
  add " * ring setup, IRQ handling and device bring-up stay in the base\n";
  add " * driver, as the paper prescribes (§2 end).\n */\n";
  add "#include <stdint.h>\n#include <stddef.h>\n#include <string.h>\n\n";
  add "#define OPENDESC_%s_CMPT_SIZE %d\n" n path.p_layout.size_bytes;
  (match tx_format with
  | Some f -> add "#define OPENDESC_%s_TXDESC_SIZE %d\n" n (Descparser.size f)
  | None -> ());
  List.iter
    (fun (k, v) ->
      add "#define OPENDESC_%s_CTX_%s %Ld\n" n (String.uppercase_ascii (sanitize k)) v)
    config;
  add "\n%s\n" get_bits_helper;
  (* Field accessors for the hardware-provided requested semantics. *)
  let hw_fields =
    List.filter_map
      (fun sem ->
        match Path.field_for path sem with Some f -> Some (sem, f) | None -> None)
      requested
  in
  List.iter (fun (_, f) -> add "%s\n" (field_accessor ~nic f)) hw_fields;
  (* Software shim prototypes. *)
  List.iter
    (fun (s, w) ->
      add "uint64_t opendesc_soft_%s(const uint8_t *pkt, uint16_t len); /* ~%.0f cycles */\n"
        (sanitize s) w)
    missing;
  (* The per-packet metadata struct the application consumes. *)
  add "\nstruct opendesc_%s_meta {\n" n;
  List.iter
    (fun sem -> add "    uint64_t %s;\n" (sanitize sem))
    requested;
  add "};\n\n";
  (* Ring view: the base driver owns allocation; we only need indices. *)
  add "struct opendesc_%s_rxq {\n" n;
  add "    const uint8_t *cmpt_ring;   /* completion records, slot-sized */\n";
  add "    uint8_t      **pkt_bufs;    /* packet buffer per slot */\n";
  add "    uint16_t      *pkt_lens;\n";
  add "    uint32_t       mask;        /* slots - 1 */\n";
  add "    uint32_t       head;\n";
  add "};\n\n";
  add "/* Consume up to n completions; returns packets delivered. */\n";
  add "static inline int opendesc_%s_rx_burst(struct opendesc_%s_rxq *q,\n" n n;
  add "        struct opendesc_%s_meta *meta, const uint8_t **pkts,\n" n;
  add "        uint16_t *lens, int budget) {\n";
  let status_field =
    List.find_opt
      (fun (f : Path.lfield) ->
        f.l_semantic = None
        && List.mem f.l_name [ "status"; "op_own"; "dd"; "validity"; "generation" ])
      path.p_layout.fields
  in
  add "    int got = 0;\n";
  add "    while (got < budget) {\n";
  add "        uint32_t idx = (q->head + got) & q->mask;\n";
  add "        const uint8_t *cmpt = q->cmpt_ring + (size_t)idx * OPENDESC_%s_CMPT_SIZE;\n" n;
  (match status_field with
  | Some f ->
      add "        if (!(cmpt[%d] & 0x1)) /* %s: completion not ready */\n"
        ((f.l_bit_off + f.l_bits - 1) / 8)
        f.l_name;
      add "            break;\n"
  | None -> add "        /* availability signalled out of band on this NIC */\n");
  add "        const uint8_t *pkt = q->pkt_bufs[idx];\n";
  add "        uint16_t len = q->pkt_lens[idx];\n";
  List.iter
    (fun (sem, (f : Path.lfield)) ->
      ignore f;
      add "        meta[got].%s = %s(cmpt);\n" (sanitize sem)
        (accessor_name ~nic f.l_name))
    hw_fields;
  List.iter
    (fun (s, _) ->
      if List.mem s requested then
        add "        meta[got].%s = opendesc_soft_%s(pkt, len); /* SoftNIC shim */\n"
          (sanitize s) (sanitize s))
    missing;
  add "        pkts[got] = pkt;\n        lens[got] = len;\n        got++;\n";
  add "    }\n    q->head += got;\n    return got;\n}\n\n";
  (* TX prepare in the selected descriptor format. *)
  (match tx_format with
  | None -> ()
  | Some fmt ->
      add "/* Build one TX descriptor (format #%d, %d bytes). */\n" fmt.d_index
        (Descparser.size fmt);
      add "static inline void opendesc_%s_tx_prepare(uint8_t *desc,\n" n;
      add "        uint64_t buf_addr, uint16_t len) {\n";
      add "    memset(desc, 0, OPENDESC_%s_TXDESC_SIZE);\n" n;
      (* MSB-first store of [src] into a byte-aligned field. *)
      let emit_store ~byte ~bytes_n ~src =
        add "    for (int i = 0; i < %d; i++)\n" bytes_n;
        add "        desc[%d + i] = (uint8_t)((uint64_t)%s >> (8 * (%d - i)));\n" byte
          src (bytes_n - 1)
      in
      let is_len_field (f : Path.lfield) =
        (match f.l_semantic with Some ("tx_len" | "pkt_len") -> true | _ -> false)
        || (f.l_semantic = None
           && List.mem f.l_name [ "length"; "len"; "byte_count"; "byte_cnt" ])
      in
      let wrote_len = ref false in
      List.iter
        (fun (f : Path.lfield) ->
          if f.l_bit_off mod 8 = 0 && f.l_bits mod 8 = 0 then
            if f.l_semantic = Some "buf_addr" && f.l_bits = 64 then
              emit_store ~byte:(f.l_bit_off / 8) ~bytes_n:8 ~src:"buf_addr"
            else if is_len_field f && not !wrote_len then begin
              wrote_len := true;
              emit_store ~byte:(f.l_bit_off / 8) ~bytes_n:(f.l_bits / 8) ~src:"len"
            end)
        fmt.d_layout.Path.fields;
      if not !wrote_len then
        add "    (void)len; /* no length field in this descriptor format */\n";
      add "}\n");
  Buffer.contents buf

let generate ~nic ~(path : Path.t) ~missing ~config =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "/* Generated by the OpenDesc compiler — do not edit.\n";
  add " * NIC: %s, completion path #%d (%d bytes)\n" nic path.p_index
    path.p_layout.size_bytes;
  add " * Provides: {%s}\n" (String.concat ", " path.p_prov);
  add " */\n#ifndef OPENDESC_%s_H\n#define OPENDESC_%s_H\n\n" (sanitize nic)
    (sanitize nic);
  add "#include <stdint.h>\n\n";
  add "#define OPENDESC_%s_CMPT_SIZE %d\n\n" (sanitize nic) path.p_layout.size_bytes;
  (match config with
  | [] -> ()
  | cfg ->
      add "/* Program these queue-context values over the control channel\n";
      add " * to select this completion path: */\n";
      List.iter (fun (k, v) -> add "#define OPENDESC_%s_CTX_%s %Ld\n" (sanitize nic) (String.uppercase_ascii (sanitize k)) v) cfg;
      add "\n");
  let needs_generic =
    List.exists
      (fun (f : Path.lfield) -> f.l_bit_off mod 8 <> 0 || f.l_bits mod 8 <> 0)
      path.p_layout.fields
  in
  if needs_generic then add "%s\n" get_bits_helper;
  List.iter (fun f -> add "%s\n" (field_accessor ~nic f)) path.p_layout.fields;
  (match missing with
  | [] -> ()
  | ms ->
      add "/* SoftNIC shims — semantics this path does not provide.\n";
      add " * Link an implementation for each (reference implementations ship\n";
      add " * with OpenDesc); cost estimates are per packet. */\n";
      List.iter
        (fun (s, w) ->
          add "uint64_t opendesc_soft_%s(const uint8_t *pkt, uint16_t len); /* ~%.0f cycles */\n"
            (sanitize s) w)
        ms;
      add "\n");
  add "#endif\n";
  Buffer.contents buf
