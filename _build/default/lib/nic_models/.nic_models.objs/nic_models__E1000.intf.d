lib/nic_models/e1000.mli: Model
