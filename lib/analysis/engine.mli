(** The descriptor-contract verifier: a multi-pass static analysis over
    a typechecked P4 NIC description, producing structured, located
    {!Diagnostic.t} values instead of strings.

    Passes (each diagnostic code is documented in docs/LINTS.md):
    - {b layout safety} — abstract interpretation of the completion
      deparser computes per-path emit offsets and bounds (OD003–OD006);
    - {b path feasibility} — branch predicates are decided over the
      context-field domains to find dead emits, constant predicates and
      inert context fields (OD007–OD009);
    - {b contract consistency} — the TX parser, RX deparser and the
      semantic registry are cross-checked (OD010–OD015);
    - {b codegen verification} — every accessor the C and eBPF emitters
      would synthesize is checked to read strictly inside [Size(p)] in
      constant time (OD016–OD017).

    The engine depends only on the [p4] library; the semantic registry
    is abstracted behind {!Registry_view.t}. *)

type input = {
  in_tenv : P4.Typecheck.t;
  in_deparser : P4.Typecheck.control_def option;
      (** the resolved completion deparser, or [None] to locate it (an
          unlocatable deparser yields OD002 unless the program declares
          an intent header, which has none by design) *)
  in_desc_parser : P4.Typecheck.parser_def option;
  in_registry : Registry_view.t;
  in_intent : (string * int) list option;
      (** requested [(semantic, width)] pairs to cross-check (OD015) *)
  in_line_offset : int;
      (** prelude lines to subtract from every span; diagnostics landing
          inside the prelude lose their location *)
}

(** One field of a concrete completion layout as the codegen pass sees
    it: absolute bit offset within the completion record. *)
type afield = {
  af_name : string;
  af_header : string;
  af_semantic : string option;
  af_bit_off : int;
  af_bits : int;
  af_span : P4.Loc.span;
}

val fields_of_run : Dep_ir.run -> afield list
(** Flatten one concrete deparser run into absolute-offset fields — the
    layout view the codegen pass checks and {!Certify} re-proves
    compiled plans against. *)

val analyze : input -> Diagnostic.t list
(** Run all passes. The result is deduplicated, relocated by
    [in_line_offset] and sorted by source position. *)

val analyze_program :
  registry:Registry_view.t ->
  ?intent:(string * int) list ->
  ?line_offset:int ->
  P4.Typecheck.t ->
  Diagnostic.t list
(** [analyze] with the deparser and TX descriptor parser located
    automatically. *)

val analyze_source :
  registry:Registry_view.t ->
  ?intent:(string * int) list ->
  ?prelude:string ->
  string ->
  Diagnostic.t list
(** Parse and typecheck [prelude ^ src], then analyze. Parse and type
    errors become a single OD001 diagnostic (located when possible)
    rather than an exception. *)

val check_accessor_bounds :
  ?path_desc:string -> size_bytes:int -> afield list -> Diagnostic.t list
(** The codegen verification step in isolation: flag accessors that read
    bytes outside [size_bytes] (OD016) and semantic fields wider than
    64 bits, whose accessors degenerate to a constant 0 (OD017).
    Exposed for unit testing against hand-built layouts. *)

val failing : werror:bool -> Diagnostic.t list -> bool
(** [true] if the list contains an error, or — with [~werror:true] — a
    warning. Info diagnostics never fail. *)

val is_intent_header : P4.Typecheck.header_def -> bool
(** A header tagged [@intent] or whose name contains ["intent"]. *)
