lib/packet/workload.ml: Array Builder Bytes Char Fivetuple Float Hdr Int32 Printf Rng String
